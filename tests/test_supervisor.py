"""Supervised engine: fault isolation, retry/backoff, chaos determinism.

The acceptance contract: under ``policy="isolate"`` with a seeded
``SessionCrashFault`` killing one of N clients mid-run, the N−1 surviving
clients' results are bit-identical to the same run without the fault, the
quarantined client yields a ``FailureRecord`` (client, phase, step,
exception), a raising recorder never aborts a run, and the default
``fail_fast`` path stays bit-identical to the pinned engine goldens
(``tests/test_golden_engine.py``).
"""

import json
import warnings

import numpy as np
import pytest

from repro.core.hints import safe_default_hint
from repro.experiments.common import sense_and_classify
from repro.faults import (
    ChannelEvalFault,
    InjectedFault,
    RecorderFault,
    SessionCrashFault,
)
from repro.mobility.modes import Heading, MobilityMode
from repro.mobility.scenarios import macro_scenario
from repro.sim import (
    FailureRecord,
    SensingSession,
    Session,
    SessionError,
    SimulationEngine,
    SupervisorConfig,
    TimeGrid,
)
from repro.telemetry import (
    NULL_RECORDER,
    ShieldedRecorder,
    TelemetryRecorder,
    failures_to_json,
    shield,
    write_failure_report,
)
from repro.util.geometry import Point


def twenty_step_grid():
    return TimeGrid(np.arange(0.0, 2.0, 0.1))


class NoisySession(Session):
    """Deterministic per-session RNG work — the survivor bit-identity probe.

    Each phase draws from the session's own seeded generator, so any
    engine-level interference (extra calls, skipped steps, reordering)
    changes the returned array.
    """

    def __init__(self, client, seed):
        self.client = client
        self._rng = np.random.default_rng(seed)
        self.values = []

    def sense(self, clock):
        self.values.append(self._rng.normal())

    def classify(self, clock):
        self.values.append(self._rng.normal() * 2.0)

    def adapt(self, clock):
        self.values.append(clock.start_s + self._rng.random())

    def transmit(self, clock):
        self.values.append(self._rng.integers(0, 100))

    def finish(self):
        return np.asarray(self.values, dtype=float)


class JournalSession(Session):
    """Appends (phase, step) so tests can see exactly what ran."""

    def __init__(self, client="journal"):
        self.client = client
        self.journal = []
        self.finished = False
        self.quarantine_calls = []

    def sense(self, clock):
        self.journal.append(("sense", clock.index))

    def classify(self, clock):
        self.journal.append(("classify", clock.index))

    def adapt(self, clock):
        self.journal.append(("adapt", clock.index))

    def transmit(self, clock):
        self.journal.append(("transmit", clock.index))

    def finish(self):
        self.finished = True
        return list(self.journal)

    def on_quarantine(self, time_s, record):
        self.quarantine_calls.append((time_s, record))


def run_trio(fault=None, supervisor=None, recorder=NULL_RECORDER, seeds=(1, 2, 3)):
    """Three NoisySessions; optionally wrap the middle one in a crash fault."""
    engine = SimulationEngine(twenty_step_grid(), recorder=recorder, supervisor=supervisor)
    for i, seed in enumerate(seeds):
        session = NoisySession(f"client-{i}", seed)
        if fault is not None and i == 1:
            session = fault.wrap(session)
        engine.add(session)
    return engine, engine.run()


class TestSupervisorConfig:
    def test_default_policy_is_fail_fast(self):
        assert SupervisorConfig().policy == "fail_fast"
        assert SupervisorConfig().fail_fast
        engine = SimulationEngine(twenty_step_grid())
        assert engine.supervisor_config.fail_fast

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            SupervisorConfig(policy="limp_home")

    def test_rejects_bad_budgets(self):
        with pytest.raises(ValueError, match="max_retries"):
            SupervisorConfig(policy="retry", max_retries=-1)
        with pytest.raises(ValueError, match="backoff_base_s"):
            SupervisorConfig(policy="retry", backoff_base_s=0.0)
        with pytest.raises(ValueError, match="backoff_factor"):
            SupervisorConfig(policy="retry", backoff_factor=0.5)

    def test_backoff_is_deterministic_exponential(self):
        config = SupervisorConfig(policy="retry", backoff_base_s=0.5, backoff_factor=2.0)
        assert [config.backoff_s(k) for k in (1, 2, 3)] == [0.5, 1.0, 2.0]


class TestFailFast:
    def test_failure_still_raises_session_error(self):
        fault = SessionCrashFault(phase="adapt", at_step=4)
        with pytest.raises(SessionError, match="client-1.*adapt"):
            run_trio(fault=fault)

    def test_run_abort_event_terminates_the_trace(self):
        recorder = TelemetryRecorder()
        fault = SessionCrashFault(phase="classify", at_step=7)
        with pytest.raises(SessionError):
            run_trio(fault=fault, recorder=recorder)
        (abort,) = recorder.tracer.of_kind("run_abort")
        assert abort.client == "client-1"
        assert abort.fields["phase"] == "classify"
        assert abort.step == 7
        assert abort.time_s == pytest.approx(0.7)
        # the trace ends in the abort marker, not a silent truncation
        assert recorder.tracer.events[-1].kind == "run_abort"
        assert not recorder.tracer.of_kind("run_end")

    def test_no_failures_surface_on_engine(self):
        engine, _ = run_trio()
        assert engine.failures == {}


class TestIsolate:
    def test_survivors_bit_identical_and_failure_record_structured(self):
        """The ISSUE acceptance criterion, minus the recorder chaos."""
        _, clean = run_trio()
        fault = SessionCrashFault(phase="classify", at_step=7)
        engine, faulty = run_trio(fault=fault, supervisor=SupervisorConfig(policy="isolate"))

        for name in ("client-0", "client-2"):
            np.testing.assert_array_equal(clean[name], faulty[name])
        record = faulty["client-1"]
        assert isinstance(record, FailureRecord)
        assert record.client == "client-1"
        assert record.phase == "classify"
        assert record.step == 7
        assert record.time_s == pytest.approx(0.7)
        assert record.exception_type == "InjectedFault"
        assert "injected session crash" in record.message
        assert record.retries == 0
        assert engine.failures == {"client-1": record}

    def test_quarantine_stops_phases_and_skips_finish(self):
        session = JournalSession()
        fault = SessionCrashFault(phase="adapt", at_step=3)
        engine = SimulationEngine(twenty_step_grid(), supervisor=SupervisorConfig(policy="isolate"))
        engine.add(fault.wrap(session))
        results = engine.run()
        assert isinstance(results["journal"], FailureRecord)
        # nothing ran after the failing call, and finish() was skipped
        assert session.journal[-1] == ("classify", 3)
        assert not session.finished
        # the safe-degradation hook fired exactly once, with the record
        ((time_s, record),) = session.quarantine_calls
        assert time_s == pytest.approx(0.3)
        assert record.phase == "adapt"

    def test_start_failure_quarantines_before_stepping(self):
        session = JournalSession()
        fault = SessionCrashFault(phase="start")
        engine = SimulationEngine(twenty_step_grid(), supervisor=SupervisorConfig(policy="isolate"))
        engine.add(fault.wrap(session))
        survivor = engine.add(NoisySession("ok", seed=9))
        results = engine.run()
        assert results["journal"].phase == "start"
        assert session.journal == []
        assert isinstance(results["ok"], np.ndarray)
        assert len(results["ok"]) == 4 * 20
        del survivor

    def test_finish_failure_yields_record(self):
        fault = SessionCrashFault(phase="finish")
        engine, results = run_trio(fault=fault, supervisor=SupervisorConfig(policy="isolate"))
        record = results["client-1"]
        assert record.phase == "finish"
        assert record.step == 19
        assert engine.failures["client-1"] is record

    def test_raising_quarantine_hook_cannot_abort(self):
        class BadHook(JournalSession):
            def on_quarantine(self, time_s, record):
                raise RuntimeError("degradation gone wrong")

        recorder = TelemetryRecorder()
        fault = SessionCrashFault(phase="sense", at_step=0)
        engine = SimulationEngine(
            twenty_step_grid(),
            recorder=recorder,
            supervisor=SupervisorConfig(policy="isolate"),
        )
        engine.add(fault.wrap(BadHook()))
        results = engine.run()
        assert isinstance(results["journal"], FailureRecord)
        assert recorder.metrics.counter("supervisor.degrade_errors", client="journal").value == 1

    def test_supervision_telemetry(self):
        recorder = TelemetryRecorder()
        fault = SessionCrashFault(phase="transmit", at_step=11)
        run_trio(fault=fault, supervisor=SupervisorConfig(policy="isolate"), recorder=recorder)
        assert recorder.metrics.counter("supervisor.failures", client="client-1").value == 1
        assert recorder.metrics.counter("supervisor.quarantined").value == 1
        (failed,) = recorder.tracer.of_kind("session_failed")
        (quarantined,) = recorder.tracer.of_kind("session_quarantined")
        assert failed.client == quarantined.client == "client-1"
        assert quarantined.fields["phase"] == "transmit"
        assert quarantined.step == 11
        (run_end,) = recorder.tracer.of_kind("run_end")
        assert run_end.fields["n_quarantined"] == 1


class TestRetry:
    def test_transient_failure_suspends_then_recovers(self):
        session = JournalSession()
        fault = SessionCrashFault(phase="sense", at_step=5, n_crashes=1)
        recorder = TelemetryRecorder()
        config = SupervisorConfig(policy="retry", max_retries=2, backoff_base_s=0.3)
        engine = SimulationEngine(twenty_step_grid(), recorder=recorder, supervisor=config)
        engine.add(fault.wrap(session))
        results = engine.run()
        # failed at t=0.5, suspended until 0.5+0.3=0.8 -> steps 5,6,7 skipped
        steps_run = sorted({step for _, step in session.journal})
        assert steps_run == [0, 1, 2, 3, 4, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19]
        assert session.finished
        assert isinstance(results["journal"], list)
        assert recorder.metrics.counter("supervisor.retries", client="journal").value == 1
        assert "supervisor.quarantined" not in recorder.metrics.counters()
        (retry,) = recorder.tracer.of_kind("session_retry")
        assert retry.fields["resume_s"] == pytest.approx(0.8)
        (resumed,) = recorder.tracer.of_kind("session_resumed")
        assert resumed.step == 8

    def test_backoff_grows_per_failure(self):
        session = JournalSession()
        # crash at steps 2 and whatever step it resumes at
        fault = SessionCrashFault(phase="sense", at_step=2, n_crashes=8)
        config = SupervisorConfig(
            policy="retry", max_retries=2, backoff_base_s=0.2, backoff_factor=2.0
        )
        recorder = TelemetryRecorder()
        engine = SimulationEngine(twenty_step_grid(), recorder=recorder, supervisor=config)
        engine.add(fault.wrap(session))
        results = engine.run()
        retries = recorder.tracer.of_kind("session_retry")
        # fail@0.2 -> resume 0.4; fail@0.4 -> resume 0.8; fail@0.8 -> quarantine
        assert [event.fields["resume_s"] for event in retries] == pytest.approx([0.4, 0.8])
        record = results["journal"]
        assert isinstance(record, FailureRecord)
        assert record.retries == 2
        assert record.step == 8

    def test_zero_retries_behaves_like_isolate(self):
        fault = SessionCrashFault(phase="classify", at_step=4)
        config = SupervisorConfig(policy="retry", max_retries=0)
        _, results = run_trio(fault=fault, supervisor=config)
        assert results["client-1"].retries == 0

    def test_start_failure_is_restarted_after_backoff(self):
        session = JournalSession()
        fault = SessionCrashFault(phase="start", n_crashes=1)
        config = SupervisorConfig(policy="retry", max_retries=1, backoff_base_s=0.25)
        engine = SimulationEngine(twenty_step_grid(), supervisor=config)
        engine.add(fault.wrap(session))
        results = engine.run()
        # start failed at t=0.0, re-attempted at the first step past 0.25
        assert session.journal[0] == ("sense", 3)
        assert session.finished
        assert isinstance(results["journal"], list)


class TestSafeHintDegradation:
    def test_safe_default_hint_is_mobility_oblivious(self):
        hint = safe_default_hint(4.2)
        assert hint.time_s == 4.2
        assert hint.mode == MobilityMode.STATIC
        assert hint.heading == Heading.NONE
        assert hint.csi_similarity is None
        assert not hint.tof_window_full
        assert not hint.is_device_mobility
        assert not hint.moving_away and not hint.moving_towards

    def test_quarantined_sensing_session_pushes_safe_hint_downstream(self):
        class FakeClassifier:
            wants_tof = False

            def push_csi(self, time_s, sample):
                return (time_s, float(sample))

        seen = []
        session = SensingSession(
            FakeClassifier(),
            csi_by_step=list(range(20)),
            client="sensor",
            on_estimate=lambda now, est: seen.append(est),
        )
        fault = SessionCrashFault(phase="classify", at_step=6)
        engine = SimulationEngine(
            twenty_step_grid(), supervisor=SupervisorConfig(policy="isolate")
        )
        engine.add(fault.wrap(session))
        results = engine.run()
        assert isinstance(results["sensor"], FailureRecord)
        # steps 0..5 produced real estimates, then one safe default
        assert seen[:-1] == [(round(0.1 * i, 10), float(i)) for i in range(6)] or len(seen) == 7
        final = seen[-1]
        assert final.mode == MobilityMode.STATIC
        assert not final.tof_window_full
        assert final.time_s == pytest.approx(0.6)
        # collected estimates are left as the partial truth, not doctored
        assert len(session.estimates) == 6


class TestRecorderShielding:
    def test_shield_passthrough_and_idempotence(self):
        assert shield(NULL_RECORDER) is NULL_RECORDER
        live = TelemetryRecorder()
        shielded = shield(live)
        assert isinstance(shielded, ShieldedRecorder)
        assert shield(shielded) is shielded

    def test_shield_absorbs_and_counts(self):
        faulty = RecorderFault(hooks=("count",)).wrap(TelemetryRecorder())
        shielded = shield(faulty)
        shielded.count("x")
        shielded.count("x")
        assert shielded.n_errors == 2
        assert isinstance(shielded.first_error, InjectedFault)
        assert shielded.enabled  # below max_errors

    def test_shield_disables_after_max_errors(self):
        faulty = RecorderFault().wrap(TelemetryRecorder())
        shielded = shield(faulty)
        shielded = ShieldedRecorder(faulty, max_errors=3)
        for _ in range(5):
            shielded.event("boom", 0.0)
        assert shielded.n_errors == 3
        assert not shielded.enabled

    def test_raising_recorder_never_aborts_a_run(self):
        """The acceptance criterion's observability clause."""
        _, clean = run_trio()
        faulty = RecorderFault(rate=1.0).wrap(TelemetryRecorder())
        _, with_chaos = run_trio(recorder=faulty)
        for name in ("client-0", "client-1", "client-2"):
            np.testing.assert_array_equal(clean[name], with_chaos[name])

    def test_partially_raising_recorder_keeps_the_rest_of_the_trace(self):
        inner = TelemetryRecorder()
        faulty = RecorderFault(hooks=("count",)).wrap(inner)
        _, results = run_trio(recorder=faulty)
        assert len(results) == 3
        assert inner.tracer.of_kind("run_start")
        assert inner.tracer.of_kind("run_end")


class TestChaosDeterminism:
    def test_same_seed_same_quarantine_set_and_surviving_bits(self):
        def chaos_run():
            faults = {
                1: SessionCrashFault(phase="classify", seed=101),
                3: SessionCrashFault(phase="transmit", seed=202),
            }
            engine = SimulationEngine(
                twenty_step_grid(), supervisor=SupervisorConfig(policy="isolate")
            )
            for i in range(5):
                session = NoisySession(f"client-{i}", seed=40 + i)
                if i in faults:
                    session = faults[i].wrap(session)
                engine.add(session)
            return engine.run()

        first = chaos_run()
        second = chaos_run()
        quarantined_first = {k for k, v in first.items() if isinstance(v, FailureRecord)}
        quarantined_second = {k for k, v in second.items() if isinstance(v, FailureRecord)}
        assert quarantined_first == quarantined_second == {"client-1", "client-3"}
        for client in quarantined_first:
            assert first[client] == second[client]  # same step, phase, message
        for client in set(first) - quarantined_first:
            np.testing.assert_array_equal(first[client], second[client])


class TestForClientsRegression:
    @staticmethod
    def _channel_and_trajectories(n=2):
        from repro.channel.config import ChannelConfig
        from repro.channel.model import MultiLinkChannel
        from repro.mobility.trajectory import WaypointWalkTrajectory

        trajectories = [
            WaypointWalkTrajectory(
                Point(5.0 + i, 5.0), area=(-40, -40, 40, 40), seed=10 + i
            ).sample(2.0, 0.05)
            for i in range(n)
        ]
        channel = MultiLinkChannel.for_clients(Point(0, 0), n, ChannelConfig(), seed=9)
        return channel, trajectories

    def test_for_clients_no_longer_mutates_the_channel(self):
        channel, trajectories = self._channel_and_trajectories()
        recorder = TelemetryRecorder()
        engine = SimulationEngine.for_clients(
            channel,
            trajectories,
            lambda i, trace: NoisySession(f"client-{i}", seed=i),
            recorder=recorder,
        )
        # the evaluation was observed...
        (batch,) = recorder.tracer.of_kind("channel_batch")
        assert batch.fields["batch_size"] == 2
        # ...but the caller's channel came back untouched
        assert channel.recorder is NULL_RECORDER
        for link in channel.links:
            assert link.recorder is NULL_RECORDER
        assert engine.run()

    def test_channel_fault_still_restores_the_recorder(self):
        channel, trajectories = self._channel_and_trajectories()
        wrapped = ChannelEvalFault(at_call=0).wrap(channel)
        with pytest.raises(InjectedFault):
            SimulationEngine.for_clients(
                wrapped,
                trajectories,
                lambda i, trace: NoisySession(f"client-{i}", seed=i),
                recorder=TelemetryRecorder(),
            )
        assert channel.recorder is NULL_RECORDER

    def test_supervisor_config_reaches_the_engine(self):
        channel, trajectories = self._channel_and_trajectories()
        engine = SimulationEngine.for_clients(
            channel,
            trajectories,
            lambda i, trace: NoisySession(f"client-{i}", seed=i),
            supervisor=SupervisorConfig(policy="isolate"),
        )
        assert engine.supervisor_config.policy == "isolate"


class TestStrideForSubgridCadence:
    def test_strict_raises_for_cadence_faster_than_grid(self):
        grid = TimeGrid(np.arange(0.0, 10.0, 0.1))
        with pytest.raises(ValueError, match="faster than the grid"):
            grid.stride_for(0.02)

    def test_lenient_warns_and_clamps(self):
        grid = TimeGrid(np.arange(0.0, 10.0, 0.1))
        with pytest.warns(RuntimeWarning, match="faster than the grid"):
            assert grid.stride_for(0.02, strict=False) == 1

    def test_aligned_cadences_stay_silent(self):
        grid = TimeGrid(np.arange(0.0, 10.0, 0.1))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert grid.stride_for(0.5) == 5
            assert grid.stride_for(0.1) == 1


class TestFailureReporting:
    def test_summary_renders_supervision_section(self):
        recorder = TelemetryRecorder()
        fault = SessionCrashFault(phase="classify", at_step=7)
        run_trio(fault=fault, supervisor=SupervisorConfig(policy="isolate"), recorder=recorder)
        text = recorder.summary()
        assert "supervision:" in text
        assert "client-1 quarantined in 'classify'" in text

    def test_failure_report_round_trips(self, tmp_path):
        fault = SessionCrashFault(phase="classify", at_step=7)
        engine, _ = run_trio(fault=fault, supervisor=SupervisorConfig(policy="isolate"))
        path = tmp_path / "failures.json"
        write_failure_report(engine.failures, path)
        report = json.loads(path.read_text())
        assert report["n_quarantined"] == 1
        (record,) = report["failures"]
        assert record["client"] == "client-1"
        assert record["phase"] == "classify"
        assert record["step"] == 7
        assert record["exception_type"] == "InjectedFault"
        assert failures_to_json(engine.failures) == path.read_text()


class TestFailFastGoldensPinned:
    """Default policy must keep the pre-supervisor goldens bit-identical,
    and the supervised loop must be a no-op when nothing fails."""

    def test_sensing_golden_under_explicit_fail_fast(self):
        sensed = sense_and_classify(
            macro_scenario(Point(10.0, 4.0), seed=5),
            Point(0.0, 0.0),
            duration_s=30.0,
            seed=5,
            supervisor=SupervisorConfig(policy="fail_fast"),
        )
        assert len(sensed.hints) == 59
        assert sensed.hints[0].mode == MobilityMode.MICRO
        assert sensed.failure is None

    def test_isolate_without_faults_matches_fail_fast(self):
        kwargs = dict(duration_s=30.0, seed=5)
        strict = sense_and_classify(
            macro_scenario(Point(10.0, 4.0), seed=5), Point(0.0, 0.0), **kwargs
        )
        supervised = sense_and_classify(
            macro_scenario(Point(10.0, 4.0), seed=5),
            Point(0.0, 0.0),
            supervisor=SupervisorConfig(policy="isolate"),
            **kwargs,
        )
        assert supervised.failure is None
        assert [(h.time_s, h.mode, h.heading) for h in supervised.hints] == [
            (h.time_s, h.mode, h.heading) for h in strict.hints
        ]
