"""Unit tests for the baseline rate-control schemes and the simulator."""

import numpy as np
import pytest

from repro.channel.perturbations import PerturbationConfig
from repro.core.hints import MobilityEstimate
from repro.mac.aggregation import AggregatedFrameResult, FrameTransmitter
from repro.mobility.modes import Heading, MobilityMode
from repro.rate.atheros import AtherosRateAdaptation
from repro.rate.base import PhyFeedback
from repro.rate.esnr import ESNRRate
from repro.rate.oracle import OracleRate, optimal_rate_hold_times, optimal_rate_series
from repro.rate.rapidsample import HintAwareRateControl, RapidSample
from repro.rate.samplerate import SampleRate
from repro.rate.simulator import simulate_rate_control
from repro.rate.softrate import SoftRate

from repro.testing import synthetic_trace


def frame(mcs, delivered, total=32):
    return AggregatedFrameResult(
        mcs_index=mcs,
        n_mpdus=total,
        n_delivered=delivered,
        airtime_s=0.004,
        mpdu_payload_bytes=1500,
        block_ack_received=delivered > 0,
    )


class TestRapidSample:
    def test_steps_down_on_failure(self):
        ra = RapidSample()
        top = ra.current_mcs
        ra.observe(0.0, frame(top, 0))
        assert ra.position == len(ra.ladder) - 2

    def test_steps_up_after_streak(self):
        ra = RapidSample(up_after_successes=2, failure_memory_s=0.0)
        ra.set_position(3)
        ra.observe(0.0, frame(ra.current_mcs, 32))
        ra.observe(0.1, frame(ra.current_mcs, 32))
        assert ra.position == 4

    def test_failure_memory_quarantines_rate(self):
        ra = RapidSample(up_after_successes=1, failure_memory_s=0.5)
        ra.set_position(4)
        failed_rate = ra.current_mcs
        ra.observe(0.0, frame(failed_rate, 0))  # drops to position 3
        assert ra.position == 3
        ra.observe(0.01, frame(ra.current_mcs, 32))
        assert ra.position == 3  # rate above failed 10 ms ago: quarantined
        ra.observe(0.6, frame(ra.current_mcs, 32))
        assert ra.position == 4  # memory expired

    def test_partial_loss_counts_as_failure(self):
        ra = RapidSample()
        top = ra.current_mcs
        ra.observe(0.0, frame(top, 10))  # 69% loss
        assert ra.position == len(ra.ladder) - 2


class TestHintAware:
    def test_switches_engine_on_hint(self):
        scheme = HintAwareRateControl()
        assert isinstance(scheme.active, SampleRate)
        scheme.update_hint(MobilityEstimate(0.0, MobilityMode.MICRO))
        assert isinstance(scheme.active, RapidSample)
        scheme.update_hint(MobilityEstimate(1.0, MobilityMode.STATIC))
        assert isinstance(scheme.active, SampleRate)

    def test_environmental_is_not_mobile(self):
        scheme = HintAwareRateControl()
        scheme.update_hint(MobilityEstimate(0.0, MobilityMode.ENVIRONMENTAL))
        assert isinstance(scheme.active, SampleRate)

    def test_direct_hint(self):
        scheme = HintAwareRateControl()
        scheme.set_mobile(True)
        assert isinstance(scheme.active, RapidSample)


class TestSampleRate:
    def test_prefers_measured_throughput(self):
        ra = SampleRate(seed=0, sample_fraction=0.001)
        # Teach it that the top rate fails and a mid rate works.
        ra.observe(0.0, frame(ra._ladder[-1], 0, total=32))
        ra.observe(0.1, frame(ra._ladder[5], 32, total=32))
        pick = ra.select(0.2)
        assert pick != ra._ladder[-1]

    def test_sampling_happens(self):
        ra = SampleRate(seed=1, sample_fraction=0.5)
        ra.observe(0.0, frame(ra._ladder[4], 32))
        picks = {ra.select(0.001 * i) for i in range(50)}
        assert len(picks) > 1  # samples neighbours


class TestSoftRate:
    def test_steps_down_when_predicted_per_high(self):
        ra = SoftRate(seed=0, estimate_noise_db=0.0)
        ra.set_position(7)
        mcs = ra.current_mcs
        ra.observe(0.0, frame(mcs, 20), PhyFeedback(soft_snr_db=0.0))
        assert ra.position == 6

    def test_steps_up_when_headroom(self):
        ra = SoftRate(seed=0, estimate_noise_db=0.0)
        ra.set_position(2)
        ra.observe(0.0, frame(ra.current_mcs, 32), PhyFeedback(soft_snr_db=40.0))
        assert ra.position == 3

    def test_without_softphy_falls_back(self):
        ra = SoftRate(seed=0)
        top = ra.current_mcs
        ra.observe(0.0, frame(top, 0), None)
        assert ra.position == len(ra.ladder) - 2


class TestESNR:
    def test_jumps_directly_to_best_rate(self):
        ra = ESNRRate(seed=0, calibration_bias_std_db=0.0)
        ra.observe(0.0, frame(ra.select(0.0), 32), PhyFeedback(esnr_db=6.0))
        low_pick = ra.select(0.1)
        ra.observe(0.1, frame(low_pick, 32), PhyFeedback(esnr_db=40.0))
        high_pick = ra.select(0.2)
        from repro.phy.mcs import mcs_by_index

        assert mcs_by_index(high_pick).rate_mbps() > mcs_by_index(low_pick).rate_mbps()

    def test_condition_awareness(self):
        ra = ESNRRate(seed=0, calibration_bias_std_db=0.0)
        ra.observe(0.0, frame(15, 32), PhyFeedback(esnr_db=30.0, mimo_condition_db=0.0))
        good = ra.select(0.1)
        ra.observe(0.1, frame(good, 32), PhyFeedback(esnr_db=30.0, mimo_condition_db=30.0))
        bad = ra.select(0.2)
        from repro.phy.mcs import mcs_by_index

        assert mcs_by_index(bad).streams == 1 or mcs_by_index(bad).rate_mbps() <= mcs_by_index(good).rate_mbps()


class TestOracle:
    def test_tracks_snr(self):
        low = synthetic_trace(snr_db=6.0)
        high = synthetic_trace(snr_db=34.0, condition_db=0.0)
        from repro.phy.mcs import mcs_by_index

        low_pick = OracleRate(low).select(1.0)
        high_pick = OracleRate(high).select(1.0)
        assert mcs_by_index(high_pick).rate_mbps() > mcs_by_index(low_pick).rate_mbps()

    def test_series_constant_on_flat_trace(self):
        trace = synthetic_trace(snr_db=20.0)
        series = optimal_rate_series(trace)
        assert len(set(series.tolist())) == 1

    def test_hold_times_sum_to_duration(self):
        trace = synthetic_trace(snr_db=20.0, duration_s=10.0, dt=0.05)
        holds = optimal_rate_hold_times(trace)
        assert np.sum(holds) == pytest.approx(10.0, abs=0.1)


class TestSimulator:
    def test_good_link_achieves_high_throughput(self):
        trace = synthetic_trace(snr_db=32.0, condition_db=0.0)
        result = simulate_rate_control(
            AtherosRateAdaptation(),
            trace,
            transmitter=FrameTransmitter(seed=1),
            perturbations=None,
        )
        assert result.throughput_mbps > 100.0

    def test_dead_link_delivers_nothing(self):
        trace = synthetic_trace(snr_db=-15.0)
        result = simulate_rate_control(
            AtherosRateAdaptation(),
            trace,
            transmitter=FrameTransmitter(seed=2),
            perturbations=None,
        )
        assert result.throughput_mbps < 1.0

    def test_hints_are_delivered_in_order(self):
        trace = synthetic_trace(snr_db=25.0)
        ra = AtherosRateAdaptation()
        seen = []
        original = ra.update_hint
        ra.update_hint = lambda est: seen.append(est.time_s)  # type: ignore
        hints = [
            MobilityEstimate(1.0, MobilityMode.MICRO),
            MobilityEstimate(3.0, MobilityMode.MACRO, Heading.AWAY, tof_window_full=True),
        ]
        simulate_rate_control(
            ra, trace, transmitter=FrameTransmitter(seed=3), hints=hints, perturbations=None
        )
        assert seen == [1.0, 3.0]
        del original

    def test_interference_reduces_throughput(self):
        trace = synthetic_trace(snr_db=28.0, duration_s=20.0)
        clean = simulate_rate_control(
            AtherosRateAdaptation(),
            trace,
            transmitter=FrameTransmitter(seed=4),
            perturbations=None,
        )
        noisy = simulate_rate_control(
            AtherosRateAdaptation(),
            trace,
            transmitter=FrameTransmitter(seed=4),
            perturbations=PerturbationConfig(interference_rate_hz=3.0),
        )
        assert noisy.throughput_mbps < clean.throughput_mbps

    def test_timeline_recording(self):
        trace = synthetic_trace(snr_db=25.0, duration_s=2.0)
        result = simulate_rate_control(
            AtherosRateAdaptation(),
            trace,
            transmitter=FrameTransmitter(seed=5),
            record_timeline=True,
            perturbations=None,
        )
        assert len(result.frame_times) == result.n_frames
        assert all(b >= a for a, b in zip(result.frame_times, result.frame_times[1:]))

    def test_retries_beat_no_retries_under_interference(self):
        """The paper's central rate-control claim, reduced to a unit test."""
        trace = synthetic_trace(snr_db=26.0, duration_s=30.0, doppler_hz=8.0)
        config = PerturbationConfig(interference_rate_hz=1.5)
        stock = simulate_rate_control(
            AtherosRateAdaptation(retries_before_down=0),
            trace,
            transmitter=FrameTransmitter(seed=6),
            perturbations=config,
        )
        with_retries = simulate_rate_control(
            AtherosRateAdaptation(retries_before_down=2),
            trace,
            transmitter=FrameTransmitter(seed=6),
            perturbations=config,
        )
        assert with_retries.throughput_mbps > stock.throughput_mbps
