"""Smoke/shape tests for the experiment harnesses (reduced sizes).

These check the *shape* of each paper result — who wins, which direction a
curve bends — on small workloads; the full-size runs live in benchmarks/.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig01_rssi,
    fig02_csi,
    fig04_tof,
    fig06_sensitivity,
    fig08_rate_dynamics,
    table1_classification,
)
from repro.experiments.common import ConfusionMatrix
from repro.mobility.modes import MobilityMode


class TestFig1:
    def test_rssi_cannot_separate_env_from_device(self):
        result = fig01_rssi.run(duration_s=40.0, n_repetitions=2, seed=1)
        static = result.median("static")
        env = result.median("environmental")
        micro = result.median("micro")
        assert env > static * 1.5  # env is clearly noisier than static...
        assert env > micro * 0.25  # ...and overlaps the device-mobility range

    def test_report_formats(self):
        result = fig01_rssi.run(duration_s=20.0, n_repetitions=1, seed=2)
        assert "Fig. 1" in result.format_report()


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig02_csi.run(duration_s=30.0, n_repetitions=1, seed=3)

    def test_thresholds_separate_modes_at_500ms(self, result):
        cdfs = result.cdfs_500ms
        assert cdfs["static"].median() > 0.98
        assert 0.7 < cdfs["environmental-strong"].median() <= 0.99
        assert cdfs["micro"].median() < 0.7
        assert cdfs["macro"].median() < 0.7

    def test_similarity_decays_with_lag(self, result):
        curve = result.similarity_vs_lag["environmental-strong"]
        lags = sorted(curve)
        assert curve[lags[0]] > curve[lags[-1]]

    def test_micro_macro_overlap(self, result):
        """CSI alone cannot split device mobility (the paper's motivation
        for ToF): distributions overlap at every sampling period."""
        for period in (0.05, 0.1, 0.25):
            overlap = result.misclassification_overlap(period)
            assert overlap > 0.05

    def test_static_flat_across_lags(self, result):
        curve = result.similarity_vs_lag["static"]
        assert min(curve.values()) > 0.97


class TestFig4:
    def test_macro_range_exceeds_micro(self):
        result = fig04_tof.run(duration_s=40.0, seed=4)
        assert result.macro_range_cycles > result.micro_range_cycles * 1.5

    def test_micro_stays_within_noise(self):
        result = fig04_tof.run(duration_s=40.0, seed=5)
        assert result.micro_range_cycles < 2.5


class TestTable1:
    def test_all_modes_above_85_percent(self):
        result = table1_classification.run(n_locations=3, duration_s=80.0, seed=6)
        assert result.minimum_accuracy() > 0.85

    def test_heading_accuracy_high(self):
        result = table1_classification.run(n_locations=2, duration_s=80.0, seed=7)
        assert result.heading_accuracy > 0.9

    def test_report_contains_matrix(self):
        result = table1_classification.run(n_locations=2, duration_s=60.0, seed=8)
        report = result.format_report()
        for mode in ("static", "environmental", "micro", "macro"):
            assert mode in report


class TestConfusionMatrix:
    def test_rows_sum_to_one(self):
        matrix = ConfusionMatrix()
        matrix.add(MobilityMode.STATIC, MobilityMode.STATIC, 9)
        matrix.add(MobilityMode.STATIC, MobilityMode.MICRO, 1)
        row = matrix.row(MobilityMode.STATIC)
        assert sum(row.values()) == pytest.approx(1.0)
        assert matrix.accuracy(MobilityMode.STATIC) == pytest.approx(0.9)

    def test_empty_row(self):
        matrix = ConfusionMatrix()
        assert matrix.accuracy(MobilityMode.MACRO) == 0.0


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig06_sensitivity.run(n_locations=1, duration_s=50.0, seed=9)

    def test_csi_accuracy_improves_with_period(self, result):
        sweep = result.csi_sweep
        assert sweep[0.5][0] >= sweep[0.05][0] - 0.05

    def test_tof_accuracy_improves_with_window(self, result):
        sweep = result.tof_sweep
        assert sweep[8][0] >= sweep[2][0]

    def test_false_positives_bounded(self, result):
        for _, fp in result.csi_sweep.values():
            assert fp < 0.25


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig08_rate_dynamics.run(duration_s=30.0, seed=10)

    def test_static_rates_hold_longer_than_macro(self, result):
        static = result.hold_time_cdfs["static"].mean()
        macro = result.hold_time_cdfs["macro"].mean()
        assert static > macro

    def test_macro_towards_trends_up(self, result):
        series = [m for _, m in result.macro_series["moving-towards"]]
        assert np.mean(series[-20:]) > np.mean(series[:20])

    def test_macro_away_trends_down(self, result):
        series = [m for _, m in result.macro_series["moving-away"]]
        assert np.mean(series[-20:]) < np.mean(series[:20])

    def test_stationary_band_bounded(self, result):
        for series in result.stationary_series.values():
            values = [m for _, m in series]
            assert max(values) - min(values) <= 13  # stays within the table
