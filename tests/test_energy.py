"""Tests for the client-energy comparison (the paper's Section-1 argument)."""

import pytest

from repro.core.energy import (
    ClientPowerProfile,
    format_comparison,
    phy_classification_energy,
    sensor_hint_energy,
)


class TestEnergyModels:
    def test_phy_far_cheaper_than_sensors(self):
        """The paper's argument: AP-side sensing saves client battery."""
        sensor = sensor_hint_energy()
        phy = phy_classification_energy()
        assert phy.average_mw < sensor.average_mw / 10.0

    def test_phy_cost_scales_with_mobility(self):
        idle = phy_classification_energy(device_mobility_fraction=0.0)
        busy = phy_classification_energy(device_mobility_fraction=1.0)
        assert idle.average_mw == 0.0  # Fig. 5 gating: no ToF when stationary
        assert busy.average_mw > 0.0

    def test_sensor_cost_dominated_by_sensing_not_uplink(self):
        report = sensor_hint_energy()
        sensing_only = sensor_hint_energy(hint_uploads_per_s=0.0)
        assert sensing_only.average_mw > report.average_mw * 0.9

    def test_battery_percent_per_day(self):
        profile = ClientPowerProfile(battery_mwh=24.0)  # 1 mW for 24 h = 100%
        report = sensor_hint_energy(profile)
        assert report.battery_percent_per_day == pytest.approx(
            report.average_mw * 100.0, rel=1e-9
        )

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            phy_classification_energy(device_mobility_fraction=1.5)

    def test_report_format(self):
        text = format_comparison()
        assert "sensor-hints" in text
        assert "phy-classification" in text
        assert "cheaper" in text
