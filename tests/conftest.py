"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.channel.config import ChannelConfig
from repro.channel.model import ChannelTrace, LinkChannel
from repro.mobility.environment import EnvironmentActivity, EnvironmentProcess
from repro.mobility.trajectory import StaticTrajectory, WaypointWalkTrajectory
from repro.util.geometry import Point


@pytest.fixture
def ap() -> Point:
    return Point(0.0, 0.0)


@pytest.fixture
def client() -> Point:
    return Point(10.0, 5.0)


@pytest.fixture
def channel_config() -> ChannelConfig:
    return ChannelConfig()


@pytest.fixture
def static_trace(ap, client, channel_config) -> ChannelTrace:
    """10 s of a static link at 50 ms resolution, with CSI."""
    trajectory = StaticTrajectory(client).sample(10.0, 0.05)
    link = LinkChannel(ap, channel_config, seed=42)
    return link.evaluate(trajectory.times, trajectory.positions, include_h=True)


@pytest.fixture
def walking_trace(ap, channel_config) -> ChannelTrace:
    """20 s of a waypoint walk at 50 ms resolution, with CSI."""
    trajectory = WaypointWalkTrajectory(
        Point(12.0, 4.0), area=(-30.0, -30.0, 30.0, 30.0), seed=7
    ).sample(20.0, 0.05)
    link = LinkChannel(ap, channel_config, seed=43)
    return link.evaluate(trajectory.times, trajectory.positions, include_h=True)


@pytest.fixture
def environmental_link(ap, client, channel_config):
    """A LinkChannel with a strong environmental process attached."""
    environment = EnvironmentProcess.from_activity(EnvironmentActivity.STRONG)
    return LinkChannel(ap, channel_config, environment=environment, seed=44)


