"""Unit tests for the frame-aggregation policies."""

import pytest

from repro.aggregation.policy import FixedAggregation, MobilityAwareAggregation
from repro.core.hints import MobilityEstimate
from repro.core.policy import default_policy_table
from repro.mobility.modes import Heading, MobilityMode


class TestFixedAggregation:
    def test_constant(self):
        policy = FixedAggregation(4.0)
        assert policy.aggregation_time_s(0.0) == pytest.approx(0.004)
        assert policy.aggregation_time_s(99.0) == pytest.approx(0.004)

    def test_name_reflects_setting(self):
        assert FixedAggregation(8.0).name == "fixed-8ms"

    def test_hints_ignored(self):
        policy = FixedAggregation(4.0)
        policy.update_hint(MobilityEstimate(0.0, MobilityMode.MACRO, Heading.AWAY,
                                            tof_window_full=True))
        assert policy.aggregation_time_s(1.0) == pytest.approx(0.004)

    def test_invalid(self):
        with pytest.raises(ValueError):
            FixedAggregation(0.0)


class TestMobilityAwareAggregation:
    def test_initial_default(self):
        policy = MobilityAwareAggregation()
        assert policy.aggregation_time_s(0.0) == pytest.approx(0.004)

    def test_follows_table2(self):
        table = default_policy_table()
        policy = MobilityAwareAggregation(table)
        cases = [
            (MobilityMode.STATIC, Heading.NONE),
            (MobilityMode.ENVIRONMENTAL, Heading.NONE),
            (MobilityMode.MICRO, Heading.NONE),
            (MobilityMode.MACRO, Heading.AWAY),
            (MobilityMode.MACRO, Heading.TOWARDS),
        ]
        for mode, heading in cases:
            policy.update_hint(
                MobilityEstimate(0.0, mode, heading,
                                 tof_window_full=heading != Heading.NONE)
            )
            expected = table.lookup(mode, heading).aggregation_limit_ms / 1000.0
            assert policy.aggregation_time_s(0.0) == pytest.approx(expected)

    def test_static_longer_than_macro(self):
        policy = MobilityAwareAggregation()
        policy.update_hint(MobilityEstimate(0.0, MobilityMode.STATIC))
        static_time = policy.aggregation_time_s(0.0)
        policy.update_hint(
            MobilityEstimate(1.0, MobilityMode.MACRO, Heading.AWAY, tof_window_full=True)
        )
        macro_time = policy.aggregation_time_s(1.0)
        assert static_time > macro_time
