"""Tests for the experiments CLI and the top-level public API."""

import numpy as np
import pytest

import repro
from repro.experiments.__main__ import EXPERIMENTS, main
from repro.testing import synthetic_trace


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_headline_exports(self):
        # The documented one-breath API.
        assert callable(repro.csi_similarity)
        clf = repro.MobilityClassifier()
        assert clf.estimate is None
        assert repro.MobilityMode.MACRO.is_device_mobility
        assert repro.Point(3, 4).norm() == 5.0

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_default_policy_table_export(self):
        table = repro.default_policy_table()
        policy = table.lookup(repro.MobilityMode.STATIC)
        assert policy.aggregation_limit_ms == 8.0


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_quick_run(self, capsys):
        assert main(["fig4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "completed in" in out

    def test_registry_covers_every_table_and_figure(self):
        expected = {
            "fig1", "fig2", "fig4", "table1", "fig6", "fig7",
            "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            "speed", "thresholds", "controller", "stream", "resilience",
        }
        assert set(EXPERIMENTS) == expected


class TestSyntheticTrace:
    def test_flat(self):
        trace = synthetic_trace(snr_db=20.0, duration_s=2.0, dt=0.1)
        assert len(trace) == 20
        assert np.all(trace.snr_db == 20.0)

    def test_callable_snr(self):
        trace = synthetic_trace(snr_db=lambda t: 10.0 + t, duration_s=2.0, dt=1.0)
        assert trace.snr_db[0] == 10.0
        assert trace.snr_db[1] == 11.0

    def test_effective_snr_falls_back(self):
        trace = synthetic_trace()
        assert np.array_equal(trace.per_snr_db(), trace.snr_db)


class TestIoCli:
    @pytest.fixture
    def log_path(self, tmp_path):
        from repro.io.csitool import CsiRecord, write_csitool_log
        from repro.io.csitool import N_SUBCARRIERS

        rng = np.random.default_rng(0)
        base = np.abs(rng.standard_normal((N_SUBCARRIERS, 2, 3))) * 40 + 20
        records = [
            CsiRecord(
                timestamp_low=600_000 * i,
                bfee_count=i,
                n_rx=3,
                n_tx=2,
                rssi_a=40,
                rssi_b=41,
                rssi_c=0,
                noise=-92,
                agc=30,
                antenna_sel=0b100100,
                rate=0x1234,
                csi=np.round(base + rng.normal(0, 0.4, base.shape)) + 0j,
            )
            for i in range(6)
        ]
        path = tmp_path / "log.dat"
        write_csitool_log(records, path)
        return path

    def test_info(self, log_path, capsys):
        from repro.io.__main__ import main as io_main

        assert io_main(["info", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "records:    6" in out
        assert "2x3" in out

    def test_classify(self, log_path, capsys):
        from repro.io.__main__ import main as io_main

        assert io_main(["classify", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "static" in out  # a stable log classifies static

    def test_missing_records(self, tmp_path, capsys):
        from repro.io.__main__ import main as io_main

        empty = tmp_path / "empty.dat"
        empty.write_bytes(b"")
        assert io_main(["info", str(empty)]) == 1
