"""Additional coverage: multi-AP traces, rssi/snr matrices, TCP corner cases."""

import numpy as np
import pytest

from repro.channel.config import ChannelConfig
from repro.mobility.trajectory import StaticTrajectory, WaypointWalkTrajectory
from repro.util.geometry import Point
from repro.wlan.floorplan import Floorplan, default_office_floorplan
from repro.wlan.multilink import MultiApChannel, MultiApTraces
from repro.wlan.traffic import TcpModel


class TestMultiApTraces:
    def _multi(self, seed=1):
        trajectory = WaypointWalkTrajectory(
            Point(10, 10), area=(2, 2, 38, 23), seed=seed
        ).sample(10.0, 0.05)
        return MultiApChannel(default_office_floorplan(), seed=seed).evaluate(
            trajectory, sample_interval_s=0.2
        )

    def test_matrix_shapes_agree(self):
        multi = self._multi()
        n = len(multi.times)
        assert multi.rssi_matrix().shape == (n, 6)
        assert multi.snr_matrix().shape == (n, 6)

    def test_snr_is_rssi_minus_noise_floor(self):
        multi = self._multi(seed=2)
        noise_floor = ChannelConfig().noise_floor_dbm
        assert np.allclose(
            multi.snr_matrix(), multi.rssi_matrix() - noise_floor, atol=1e-9
        )

    def test_strongest_ap_argmax(self):
        multi = self._multi(seed=3)
        rssi = multi.rssi_matrix()
        for i in (0, len(multi.times) // 2, len(multi.times) - 1):
            assert multi.strongest_ap(i) == int(np.argmax(rssi[i]))

    def test_trace_count_validation(self):
        multi = self._multi(seed=4)
        with pytest.raises(ValueError):
            MultiApTraces(
                floorplan=multi.floorplan,
                trajectory=multi.trajectory,
                traces=multi.traces[:3],
            )

    def test_distances_match_geometry(self):
        floorplan = default_office_floorplan()
        position = Point(10.0, 10.0)
        trajectory = StaticTrajectory(position).sample(2.0, 0.05)
        multi = MultiApChannel(floorplan, seed=5).evaluate(trajectory, 0.2)
        for ap_index, ap in enumerate(floorplan.ap_positions):
            expected = np.hypot(position.x - ap.x, position.y - ap.y)
            assert multi.distances_to_ap(ap_index)[0] == pytest.approx(expected)

    def test_independent_links_have_different_fading(self):
        multi = self._multi(seed=6)
        fading = np.stack([t.fading_db for t in multi.traces])
        # All six links share the trajectory but not the fading realisation.
        assert len({round(float(f[0]), 6) for f in fading}) == 6


class TestTcpCornerCases:
    def test_all_outage_yields_zero(self):
        tcp = TcpModel()
        times = np.arange(0.0, 5.0, 0.1)
        result = tcp.apply(times, np.zeros_like(times))
        assert np.all(result == 0.0)

    def test_recovery_time_scales(self):
        times = np.arange(0.0, 20.0, 0.1)
        goodput = np.full_like(times, 50.0)
        goodput[50:55] = 0.0
        slow = TcpModel(recovery_s=5.0).apply(times, goodput)
        fast = TcpModel(recovery_s=0.5).apply(times, goodput)
        # Shortly after the outage, fast recovery has restored more.
        index = 60  # 0.5 s after the outage end
        assert fast[index] > slow[index]

    def test_single_point_timeline(self):
        tcp = TcpModel()
        result = tcp.apply(np.array([0.0]), np.array([30.0]))
        assert result.shape == (1,)

    def test_efficiency_bounds(self):
        with np.errstate(all="raise"):
            tcp = TcpModel(protocol_efficiency=1.0, recovery_s=1e-9)
            times = np.arange(0.0, 2.0, 0.1)
            goodput = np.full_like(times, 10.0)
            result = tcp.apply(times, goodput)
        assert np.all(result[1:] == pytest.approx(10.0))


class TestFloorplanGeometry:
    def test_ap_grid_spacing(self):
        floorplan = default_office_floorplan()
        xs = sorted({ap.x for ap in floorplan.ap_positions})
        assert xs == [7.0, 20.0, 33.0]

    def test_custom_floorplan(self):
        floorplan = Floorplan(
            ap_positions=(Point(0, 0), Point(10, 0)), bounds=(-5, -5, 15, 5)
        )
        assert floorplan.nearest_ap(Point(9, 0)) == 1
        assert floorplan.nearest_ap(Point(1, 0)) == 0
