"""The 1.1 shim entry points now raise real ``DeprecationWarning``s.

Each of ``simulate_stack``, ``simulate_scheduling`` and
``simulate_roaming`` is a thin wrapper over a Session on the engine; the
docstrings have carried ``.. deprecated:: 1.1`` notes since the refactor
and the warnings make them machine-visible — exactly once per call.
"""

import warnings

import numpy as np
import pytest

from repro.core.hints import MobilityEstimate
from repro.mobility.modes import Heading, MobilityMode
from repro.mobility.scenarios import macro_scenario
from repro.roaming.schemes import DefaultClientRoaming
from repro.roaming.simulator import simulate_roaming
from repro.testing import synthetic_trace
from repro.util.geometry import Point
from repro.wlan.floorplan import default_office_floorplan
from repro.wlan.multilink import MultiApChannel
from repro.wlan.scheduler import RoundRobinScheduler, simulate_scheduling
from repro.wlan.stack import default_stack, simulate_stack


@pytest.fixture(scope="module")
def multi():
    """A tiny CSI-free walk: enough for the shims, cheap to evaluate."""
    floorplan = default_office_floorplan()
    scenario = macro_scenario(Point(5.0, 5.0), area=(2.0, 2.0, 38.0, 23.0), seed=1)
    trajectory = scenario.sample(2.0, 0.02)
    return MultiApChannel(floorplan, seed=1).evaluate(
        trajectory, sample_interval_s=0.1, include_h=False
    )


def _deprecations(record):
    return [w for w in record if issubclass(w.category, DeprecationWarning)]


def test_simulate_stack_warns_once_per_call(multi):
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        simulate_stack(multi, default_stack(), seed=1)
    caught = _deprecations(record)
    assert len(caught) == 1
    assert "simulate_stack is deprecated" in str(caught[0].message)


def test_simulate_roaming_warns_once_per_call(multi):
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        simulate_roaming(
            multi, DefaultClientRoaming(), device_mobile_truth=np.ones(len(multi.times), bool),
            seed=1,
        )
    caught = _deprecations(record)
    assert len(caught) == 1
    assert "simulate_roaming is deprecated" in str(caught[0].message)


def test_simulate_scheduling_warns_once_per_call():
    traces = [
        synthetic_trace(snr_db=22.0, duration_s=1.0),
        synthetic_trace(snr_db=18.0, duration_s=1.0),
    ]
    hints = [
        [MobilityEstimate(0.1, MobilityMode.STATIC)],
        [MobilityEstimate(0.1, MobilityMode.MACRO, Heading.AWAY, tof_window_full=True)],
    ]
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        simulate_scheduling(RoundRobinScheduler(), traces, hints=hints, transmitter_seed=1)
        simulate_scheduling(RoundRobinScheduler(), traces, hints=hints, transmitter_seed=1)
    caught = _deprecations(record)
    assert len(caught) == 2  # exactly one warning per call, not per frame
    assert all("simulate_scheduling is deprecated" in str(w.message) for w in caught)
