"""Unit tests for ToF median filtering and trend detection."""

import numpy as np
import pytest

from repro.core.tof_trend import (
    ToFTrend,
    ToFTrendConfig,
    ToFTrendDetector,
    detect_trend,
)
from repro.mobility.modes import Heading
from repro.phy.tof import ToFConfig, ToFSampler


class TestDetectTrend:
    def test_clean_increase(self):
        assert detect_trend([1.0, 2.0, 3.0, 4.0], 0.5, 0.8) == ToFTrend.INCREASING

    def test_clean_decrease(self):
        assert detect_trend([4.0, 3.0, 2.0, 1.0], 0.5, 0.8) == ToFTrend.DECREASING

    def test_plateaus_tolerated(self):
        """Quantised medians plateau; the trend must still be callable."""
        assert detect_trend([10.0, 10.0, 11.0, 11.0], 0.5, 0.8) == ToFTrend.INCREASING

    def test_small_backward_step_tolerated(self):
        assert detect_trend([10.0, 10.4, 10.1, 11.2], 0.5, 0.8) == ToFTrend.INCREASING

    def test_large_contradiction_rejected(self):
        assert detect_trend([10.0, 12.0, 10.2, 12.5], 0.5, 0.8) == ToFTrend.NONE

    def test_insufficient_net_change(self):
        # Micro mobility: fluctuation without net distance change.
        assert detect_trend([10.0, 10.2, 10.3, 10.5], 0.5, 0.8) == ToFTrend.NONE

    def test_too_short_window(self):
        assert detect_trend([10.0], 0.5, 0.8) == ToFTrend.NONE

    def test_heading_mapping(self):
        assert ToFTrend.INCREASING.heading == Heading.AWAY
        assert ToFTrend.DECREASING.heading == Heading.TOWARDS
        assert ToFTrend.NONE.heading == Heading.NONE


class TestConfig:
    def test_samples_per_median(self):
        config = ToFTrendConfig(sample_interval_s=0.02, median_period_s=1.0)
        assert config.samples_per_median == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            ToFTrendConfig(window_periods=1)
        with pytest.raises(ValueError):
            ToFTrendConfig(sample_interval_s=0.0)
        with pytest.raises(ValueError):
            ToFTrendConfig(min_net_cycles=0.0)

    def test_zero_step_tolerance_accepted(self):
        """Tolerance 0 = strictly monotone windows required; it is valid."""
        config = ToFTrendConfig(step_tolerance_cycles=0.0)
        assert config.step_tolerance_cycles == 0.0

    def test_negative_step_tolerance_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ToFTrendConfig(step_tolerance_cycles=-0.1)

    def test_zero_min_net_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ToFTrendConfig(min_net_cycles=0.0)

    def test_negative_min_net_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ToFTrendConfig(min_net_cycles=-1.0)

    def test_min_median_samples_boundaries(self):
        with pytest.raises(ValueError):
            ToFTrendConfig(min_median_samples=0)
        assert ToFTrendConfig(min_median_samples=1).effective_min_median_samples == 1
        # Default: half the nominal samples per median (50/s -> 25).
        assert ToFTrendConfig(time_aware=True).effective_min_median_samples == 25


class TestDetector:
    def _push_seconds(self, detector, values_per_second):
        """Push one second (50 samples) per listed median value."""
        for value in values_per_second:
            for _ in range(50):
                detector.push(value)

    def test_no_trend_before_window_fills(self):
        detector = ToFTrendDetector()
        self._push_seconds(detector, [100, 101, 102, 103])  # window of 5 not full
        assert not detector.window_full
        assert detector.trend == ToFTrend.NONE

    def test_macro_away_detected(self):
        detector = ToFTrendDetector()
        self._push_seconds(detector, [100, 101, 102, 103, 104])
        assert detector.window_full
        assert detector.trend == ToFTrend.INCREASING
        assert detector.heading == Heading.AWAY

    def test_macro_towards_detected(self):
        detector = ToFTrendDetector()
        self._push_seconds(detector, [104, 103, 102, 101, 100])
        assert detector.heading == Heading.TOWARDS

    def test_micro_noise_gives_no_trend(self):
        detector = ToFTrendDetector()
        self._push_seconds(detector, [100, 100.3, 99.9, 100.2, 100.1])
        assert detector.window_full
        assert detector.trend == ToFTrend.NONE

    def test_reset_clears_window(self):
        detector = ToFTrendDetector()
        self._push_seconds(detector, [100, 101, 102, 103, 104])
        detector.reset()
        assert not detector.window_full
        assert detector.trend == ToFTrend.NONE

    def test_median_robust_to_outlier_readings(self):
        detector = ToFTrendDetector()
        for second in range(5):
            base = 100.0 + second
            for i in range(50):
                value = base + (40.0 if i % 10 == 0 else 0.0)  # 10% outliers
                detector.push(value)
        assert detector.trend == ToFTrend.INCREASING

    def test_push_returns_trend_on_median_boundary(self):
        detector = ToFTrendDetector()
        results = [detector.push(100.0) for _ in range(50)]
        assert results[-1] is not None
        assert all(r is None for r in results[:-1])


class TestTimeAwareDetector:
    """Wall-clock aggregation and gap invalidation (time_aware=True)."""

    def _config(self, **kwargs):
        return ToFTrendConfig(time_aware=True, min_median_samples=10, **kwargs)

    def _push_seconds(self, detector, values_per_second, t0=0.0, interval=0.02):
        t = t0
        for value in values_per_second:
            for _ in range(50):
                detector.push(value, time_s=t)
                t += interval
        return t

    def test_requires_timestamp(self):
        detector = ToFTrendDetector(self._config())
        with pytest.raises(ValueError, match="time_s"):
            detector.push(100.0)

    def test_uniform_cadence_matches_count_based(self):
        # 1/64 s is exactly representable, so period boundaries land on
        # sample timestamps with no float drift: both detectors must see
        # identical batches and produce identical medians and trends.
        interval = 1.0 / 64.0
        timed = ToFTrendDetector(
            ToFTrendConfig(sample_interval_s=interval, time_aware=True, min_median_samples=10)
        )
        counted = ToFTrendDetector(ToFTrendConfig(sample_interval_s=interval))
        for i in range(64 * 6 + 1):
            value = 100.0 + (i // 64)
            timed.push(value, time_s=i * interval)
            counted.push(value)
        assert timed.trend == counted.trend == ToFTrend.INCREASING
        assert timed.medians == counted.medians
        assert timed.n_gaps == 0

    def test_sparse_period_emits_gap_and_invalidates(self):
        detector = ToFTrendDetector(self._config())
        self._push_seconds(detector, [100, 101, 102, 103, 104])
        # One second with only 3 readings: below min_median_samples.  The
        # first push closes the healthy [4 s, 5 s) period -> window fills.
        for t in (5.1, 5.5, 5.9):
            detector.push(105.0, time_s=t)
        assert detector.window_full
        assert detector.trend == ToFTrend.INCREASING
        detector.push(106.0, time_s=6.05)  # closes the sparse period
        assert detector.n_gaps == 1
        assert detector.n_medians_discarded == 1
        assert detector.n_windows_invalidated == 1
        assert not detector.window_full
        assert detector.trend == ToFTrend.NONE

    def test_total_outage_collapses_to_one_gap(self):
        detector = ToFTrendDetector(self._config())
        end = self._push_seconds(detector, [100, 101])
        # 10 s of silence, then readings resume.
        detector.push(110.0, time_s=end + 10.0)
        # The open period closes (full: 50 samples) and the empty span
        # collapses into a single gap marker, not ten.
        assert detector.n_gaps == 1
        assert detector.n_medians_discarded == 0  # no partial data lost
        assert detector.trend == ToFTrend.NONE
        assert not detector.window_full

    def test_window_rebuilds_after_gap(self):
        detector = ToFTrendDetector(self._config())
        self._push_seconds(detector, [100, 101, 102, 103, 104])
        detector.push(105.0, time_s=20.0)  # long outage
        assert detector.trend == ToFTrend.NONE
        # Six more seconds of readings: five fresh periods close and the
        # trend window rebuilds from contiguous medians only.
        self._push_seconds(detector, [106, 107, 108, 109, 110, 111], t0=20.02)
        assert detector.trend == ToFTrend.INCREASING

    def test_slow_drift_not_stretched_into_trend(self):
        """The bug this mode fixes: 50% sample loss must not let a
        sub-threshold drift accumulate over a stretched window."""
        drift_per_s = 0.15  # cycles/s: needs ~6.7 s to clear min_net=1.0
        # Count-based detector with half the samples missing: each "second"
        # of medians actually spans 2 s, the 5-median window spans ~10 s,
        # and the net change (~1.5 cycles) fakes a macro trend.
        counted = ToFTrendDetector()
        timed = ToFTrendDetector(self._config())
        rng = np.random.default_rng(9)
        t = 0.0
        while t < 14.0:
            value = 100.0 + drift_per_s * t
            if rng.random() >= 0.5:  # 50% drop
                counted.push(value)
                timed.push(value, time_s=t)
            t += 0.02
        assert counted.trend == ToFTrend.INCREASING  # the silent corruption
        assert timed.trend == ToFTrend.NONE  # wall-clock windows stay honest

    def test_reset_drops_partial_timed_batch(self):
        detector = ToFTrendDetector(self._config())
        for i in range(30):
            detector.push(100.0, time_s=0.02 * i)
        detector.reset()
        # A new episode starting later must not inherit the half batch.
        detector.push(200.0, time_s=50.0)
        assert detector.n_gaps == 0
        assert detector.medians == []


class TestEndToEnd:
    """The full ToF pipeline on simulated walks (the Fig. 4 mechanics)."""

    def _detect(self, distances, seed):
        sampler = ToFSampler(ToFConfig(), seed=seed)
        readings = sampler.sample(distances)
        detector = ToFTrendDetector()
        trends = []
        for reading in readings:
            result = detector.push(reading)
            if result is not None:
                trends.append(result)
        return trends

    def test_walking_away_yields_increasing(self):
        t = np.arange(0.0, 10.0, 0.02)
        distances = 8.0 + 1.2 * t
        trends = self._detect(distances, seed=1)
        assert ToFTrend.INCREASING in trends[4:]

    def test_walking_towards_yields_decreasing(self):
        t = np.arange(0.0, 10.0, 0.02)
        distances = 25.0 - 1.2 * t
        trends = self._detect(distances, seed=2)
        assert ToFTrend.DECREASING in trends[4:]

    def test_confined_micro_motion_mostly_no_trend(self):
        rng = np.random.default_rng(3)
        t = np.arange(0.0, 40.0, 0.02)
        distances = 12.0 + 0.4 * np.sin(0.8 * t) + rng.normal(0, 0.05, len(t))
        trends = self._detect(distances, seed=3)
        full_window = trends[4:]
        fraction_trending = np.mean([tr != ToFTrend.NONE for tr in full_window])
        assert fraction_trending < 0.2

    def test_circular_walk_fools_the_detector(self):
        """The documented Section-9 limitation."""
        t = np.arange(0.0, 30.0, 0.02)
        distances = np.full_like(t, 8.0)  # circle around the AP
        trends = self._detect(distances, seed=4)
        assert all(tr == ToFTrend.NONE for tr in trends[4:])
