"""Unit tests for floorplan, multi-AP channels, traffic, and the stack."""

import numpy as np
import pytest

from repro.channel.config import ChannelConfig
from repro.mobility.scenarios import macro_scenario
from repro.mobility.trajectory import StaticTrajectory, WaypointWalkTrajectory
from repro.util.geometry import Point
from repro.wlan.floorplan import Floorplan, default_office_floorplan, single_ap_floorplan
from repro.wlan.multilink import MultiApChannel
from repro.wlan.stack import default_stack, mobility_aware_stack, simulate_stack
from repro.wlan.traffic import TcpModel, udp_throughput_mbps

# These tests go through the deprecated 1.1 shim entry points on purpose
# (pinning their behaviour); their DeprecationWarnings are expected here
# while CI escalates unexpected ones to errors.
pytestmark = pytest.mark.filterwarnings("ignore:simulate_:DeprecationWarning")


class TestFloorplan:
    def test_default_office(self):
        floorplan = default_office_floorplan()
        assert floorplan.n_aps == 6
        x_min, y_min, x_max, y_max = floorplan.bounds
        for ap in floorplan.ap_positions:
            assert x_min <= ap.x <= x_max
            assert y_min <= ap.y <= y_max

    def test_nearest_ap(self):
        floorplan = default_office_floorplan()
        first_ap = floorplan.ap_positions[0]
        assert floorplan.nearest_ap(first_ap) == 0

    def test_random_position_inside(self):
        floorplan = default_office_floorplan()
        for seed in range(10):
            point = floorplan.random_client_position(seed)
            x_min, y_min, x_max, y_max = floorplan.bounds
            assert x_min <= point.x <= x_max
            assert y_min <= point.y <= y_max

    def test_single_ap(self):
        floorplan = single_ap_floorplan(Point(1.0, 2.0))
        assert floorplan.n_aps == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Floorplan(ap_positions=())
        with pytest.raises(ValueError):
            Floorplan(ap_positions=(Point(0, 0),), bounds=(0, 0, 0, 10))


class TestMultiAp:
    def test_one_trace_per_ap(self):
        floorplan = default_office_floorplan()
        trajectory = StaticTrajectory(Point(10, 10)).sample(5.0, 0.02)
        multi = MultiApChannel(floorplan, seed=1).evaluate(trajectory, 0.1)
        assert len(multi.traces) == 6
        assert multi.rssi_matrix().shape == (len(multi.times), 6)

    def test_strongest_ap_is_nearby(self):
        floorplan = default_office_floorplan()
        near_first = Point(7.5, 6.5)  # AP 0 is at (7, 6)
        trajectory = StaticTrajectory(near_first).sample(3.0, 0.02)
        multi = MultiApChannel(floorplan, ChannelConfig(shadowing_sigma_db=0.0), seed=2).evaluate(
            trajectory, 0.1
        )
        assert multi.strongest_ap(0) == 0

    def test_selective_csi(self):
        floorplan = default_office_floorplan()
        trajectory = StaticTrajectory(Point(10, 10)).sample(2.0, 0.02)
        multi = MultiApChannel(floorplan, seed=3).evaluate(
            trajectory, 0.1, include_h_for=[1, 4]
        )
        assert multi.traces[1].h is not None
        assert multi.traces[4].h is not None
        assert multi.traces[0].h is None

    def test_distances(self):
        floorplan = default_office_floorplan()
        trajectory = StaticTrajectory(Point(7.0, 6.0)).sample(2.0, 0.02)
        multi = MultiApChannel(floorplan, seed=4).evaluate(trajectory, 0.1)
        assert np.allclose(multi.distances_to_ap(0), 0.0, atol=1e-9)


class TestTraffic:
    def test_udp_mean(self):
        assert udp_throughput_mbps(np.array([10.0, 20.0, 30.0])) == 20.0

    def test_tcp_protocol_efficiency(self):
        tcp = TcpModel(protocol_efficiency=0.9, recovery_s=1e-9)
        times = np.arange(0.0, 10.0, 0.1)
        goodput = np.full_like(times, 50.0)
        result = tcp.apply(times, goodput)
        assert np.allclose(result[1:], 45.0)

    def test_tcp_outage_recovery_ramp(self):
        tcp = TcpModel(recovery_s=2.0)
        times = np.arange(0.0, 10.0, 0.1)
        goodput = np.full_like(times, 50.0)
        goodput[30:35] = 0.0  # 0.5 s outage at t = 3
        result = tcp.apply(times, goodput)
        assert result[34] == 0.0
        after = result[35:55]
        assert after[0] < after[-1]  # ramping
        assert np.all(np.diff(after) >= -1e-9)

    def test_tcp_never_exceeds_mac_goodput(self):
        tcp = TcpModel()
        times = np.arange(0.0, 5.0, 0.1)
        rng = np.random.default_rng(0)
        goodput = rng.uniform(0.0, 80.0, size=len(times))
        result = tcp.apply(times, goodput)
        assert np.all(result <= goodput + 1e-9)

    def test_validation(self):
        tcp = TcpModel()
        with pytest.raises(ValueError):
            tcp.apply(np.array([0.0]), np.array([1.0, 2.0]))


class TestStack:
    OVERALL_CFG = ChannelConfig(tx_power_dbm=8.0, rician_k_db=-2.0, n_paths=16)

    def _multi(self, seed=1, duration=20.0):
        floorplan = default_office_floorplan()
        scenario = macro_scenario(
            Point(5, 5), area=(2.0, 2.0, 38.0, 23.0), seed=seed
        )
        trajectory = scenario.sample(duration, 0.02)
        return MultiApChannel(floorplan, self.OVERALL_CFG, seed=seed).evaluate(
            trajectory, sample_interval_s=0.1, include_h=True
        )

    def test_both_arms_produce_throughput(self):
        multi = self._multi()
        aware = simulate_stack(multi, mobility_aware_stack(), seed=2)
        default = simulate_stack(multi, default_stack(), seed=2)
        assert aware.mean_throughput_mbps > 1.0
        assert default.mean_throughput_mbps > 1.0

    def test_aware_arm_classifies(self):
        multi = self._multi(seed=3)
        aware = simulate_stack(multi, mobility_aware_stack(), seed=4)
        assert len(aware.estimates) > 5

    def test_default_arm_does_not_classify(self):
        multi = self._multi(seed=5)
        default = simulate_stack(multi, default_stack(), seed=6)
        assert default.estimates == []

    def test_aware_feeds_back_more_when_walking(self):
        multi = self._multi(seed=7)
        aware = simulate_stack(multi, mobility_aware_stack(), seed=8)
        default = simulate_stack(multi, default_stack(), seed=8)
        assert aware.n_feedbacks > default.n_feedbacks

    def test_aware_beats_default_on_walks(self):
        """The Fig. 13 headline on one walk."""
        multi = self._multi(seed=9, duration=30.0)
        aware = simulate_stack(multi, mobility_aware_stack(), seed=10)
        default = simulate_stack(multi, default_stack(), seed=10)
        assert aware.mean_throughput_mbps > default.mean_throughput_mbps
