"""Unit tests for the streaming filters."""

import math

import numpy as np
import pytest

from repro.util.filters import (
    ExponentialMovingAverage,
    MedianFilter,
    MovingWindow,
    SlidingStatistics,
    TimedMedianFilter,
)


class TestExponentialMovingAverage:
    def test_first_sample_initialises(self):
        ewma = ExponentialMovingAverage(alpha=0.125)
        assert ewma.value is None
        assert ewma.update(4.0) == 4.0

    def test_matches_paper_equation(self):
        # Eq. 2: avg = alpha * new + (1 - alpha) * avg
        ewma = ExponentialMovingAverage(alpha=0.25, initial=0.8)
        assert ewma.update(0.0) == pytest.approx(0.6)
        assert ewma.update(1.0) == pytest.approx(0.25 + 0.75 * 0.6)

    def test_larger_alpha_forgets_faster(self):
        slow = ExponentialMovingAverage(alpha=1 / 16, initial=1.0)
        fast = ExponentialMovingAverage(alpha=1 / 2, initial=1.0)
        for _ in range(4):
            slow.update(0.0)
            fast.update(0.0)
        assert fast.value < slow.value

    def test_alpha_one_tracks_instantaneously(self):
        ewma = ExponentialMovingAverage(alpha=1.0, initial=5.0)
        assert ewma.update(2.5) == 2.5

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            ExponentialMovingAverage(alpha=0.0)
        with pytest.raises(ValueError):
            ExponentialMovingAverage(alpha=1.5)

    def test_non_finite_sample_rejected(self):
        ewma = ExponentialMovingAverage(alpha=0.5)
        with pytest.raises(ValueError):
            ewma.update(math.nan)

    def test_set_alpha_keeps_value(self):
        ewma = ExponentialMovingAverage(alpha=0.5, initial=3.0)
        ewma.set_alpha(0.1)
        assert ewma.value == 3.0
        assert ewma.alpha == 0.1

    def test_reset(self):
        ewma = ExponentialMovingAverage(alpha=0.5, initial=3.0)
        ewma.reset()
        assert ewma.value is None


class TestMovingWindow:
    def test_capacity_enforced(self):
        window = MovingWindow(3)
        window.extend([1, 2, 3, 4])
        assert window.values() == [2.0, 3.0, 4.0]

    def test_full_flag(self):
        window = MovingWindow(2)
        assert not window.full
        window.push(1.0)
        assert not window.full
        window.push(2.0)
        assert window.full

    def test_statistics(self):
        window = MovingWindow(5)
        window.extend([1, 2, 3, 4, 5])
        assert window.mean() == 3.0
        assert window.median() == 3.0
        assert window.std() == pytest.approx(np.std([1, 2, 3, 4, 5]))

    def test_empty_statistics_raise(self):
        window = MovingWindow(3)
        with pytest.raises(ValueError):
            window.mean()

    def test_strictly_increasing(self):
        window = MovingWindow(4)
        window.extend([1, 2, 3, 4])
        assert window.is_strictly_increasing()
        assert not window.is_strictly_decreasing()

    def test_plateau_is_not_strictly_monotone(self):
        window = MovingWindow(3)
        window.extend([1, 1, 2])
        assert not window.is_strictly_increasing()

    def test_single_sample_has_no_trend(self):
        window = MovingWindow(3)
        window.push(1.0)
        assert not window.is_strictly_increasing()
        assert not window.is_strictly_decreasing()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MovingWindow(0)


class TestMedianFilter:
    def test_emits_median_when_batch_full(self):
        median = MedianFilter(3)
        assert median.push(5.0) is None
        assert median.push(100.0) is None
        assert median.push(6.0) == 6.0

    def test_robust_to_outliers(self):
        median = MedianFilter(5)
        for value in (10.0, 10.0, 500.0, 10.0):
            assert median.push(value) is None
        assert median.push(10.0) == 10.0

    def test_batches_are_independent(self):
        median = MedianFilter(2)
        assert median.push(1.0) is None
        assert median.push(3.0) == 2.0
        assert median.push(10.0) is None
        assert median.push(20.0) == 15.0

    def test_flush_partial_batch(self):
        median = MedianFilter(10)
        median.push(4.0)
        median.push(8.0)
        assert median.flush() == 6.0
        assert median.flush() is None

    def test_pending_count(self):
        median = MedianFilter(3)
        median.push(1.0)
        assert median.pending == 1
        median.reset()
        assert median.pending == 0


class TestTimedMedianFilter:
    def test_batch_closes_on_elapsed_time_not_count(self):
        filt = TimedMedianFilter(period_s=1.0, min_samples=2)
        assert filt.push(0.0, 5.0) == []
        assert filt.push(0.4, 100.0) == []
        assert filt.push(0.8, 6.0) == []
        (batch,) = filt.push(1.1, 7.0)
        assert not batch.is_gap
        assert batch.median == 6.0
        assert (batch.start_s, batch.end_s, batch.n_samples) == (0.0, 1.0, 3)

    def test_sparse_period_becomes_gap_marker(self):
        filt = TimedMedianFilter(period_s=1.0, min_samples=3)
        filt.push(0.0, 5.0)
        (batch,) = filt.push(1.5, 6.0)
        assert batch.is_gap
        assert batch.median is None
        assert batch.n_samples == 1

    def test_empty_periods_collapse_into_one_gap(self):
        filt = TimedMedianFilter(period_s=1.0, min_samples=1)
        for t in (0.0, 0.2, 0.4):
            filt.push(t, 10.0)
        closed = filt.push(7.3, 11.0)
        assert len(closed) == 2
        median, gap = closed
        assert median.median == 10.0
        assert gap.is_gap and gap.n_samples == 0
        assert (gap.start_s, gap.end_s) == (1.0, 7.0)
        # The new sample belongs to the freshly anchored period.
        assert filt.pending == 1

    def test_periods_stay_anchored(self):
        filt = TimedMedianFilter(period_s=1.0, min_samples=1)
        filt.push(0.5, 1.0)
        (batch,) = filt.push(1.6, 2.0)
        assert (batch.start_s, batch.end_s) == (0.5, 1.5)

    def test_non_monotonic_time_rejected(self):
        filt = TimedMedianFilter(period_s=1.0)
        filt.push(1.0, 5.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            filt.push(0.5, 5.0)

    def test_flush_and_reset(self):
        filt = TimedMedianFilter(period_s=1.0, min_samples=1)
        filt.push(0.0, 4.0)
        filt.push(0.5, 8.0)
        batch = filt.flush()
        assert batch.median == 6.0
        assert filt.flush() is None
        assert filt.pending == 0
        filt.push(10.0, 1.0)  # fresh anchor after flush
        assert filt.push(10.2, 1.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            TimedMedianFilter(period_s=0.0)
        with pytest.raises(ValueError):
            TimedMedianFilter(period_s=1.0, min_samples=0)


class TestSlidingStatistics:
    def test_windowed_std(self):
        stats = SlidingStatistics(3)
        for value in (0.0, 0.0, 10.0, 10.0, 10.0):
            stats.push(value)
        assert stats.std() == 0.0  # the last three samples are constant

    def test_ready_and_full(self):
        stats = SlidingStatistics(2)
        assert not stats.ready
        stats.push(1.0)
        assert stats.ready and not stats.full
        stats.push(2.0)
        assert stats.full
