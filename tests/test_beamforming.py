"""Unit tests for precoding, feedback scheduling, SU-BF and MU-MIMO."""

import numpy as np
import pytest

from repro.beamforming.feedback import FixedPeriodFeedback, MobilityAwareFeedback
from repro.beamforming.mu_mimo import MuMimoEmulator
from repro.beamforming.precoding import (
    beamforming_gain,
    mrt_weights,
    zero_forcing_weights,
)
from repro.beamforming.su_bf import simulate_su_beamforming
from repro.channel.config import ChannelConfig
from repro.channel.model import LinkChannel
from repro.core.hints import MobilityEstimate
from repro.core.policy import default_policy_table
from repro.mobility.modes import Heading, MobilityMode
from repro.mobility.trajectory import StaticTrajectory, WaypointWalkTrajectory
from repro.util.geometry import Point


def _random_h(rng, k=13, t=3):
    return (rng.standard_normal((k, t)) + 1j * rng.standard_normal((k, t))) / np.sqrt(2)


class TestMrt:
    def test_unit_norm(self):
        rng = np.random.default_rng(0)
        weights = mrt_weights(_random_h(rng))
        assert np.allclose(np.linalg.norm(weights, axis=1), 1.0)

    def test_full_array_gain_when_fresh(self):
        rng = np.random.default_rng(1)
        h = _random_h(rng, k=52)
        gain = beamforming_gain(h, mrt_weights(h))
        reference = np.mean(np.abs(h) ** 2)
        # 3 TX antennas: +10*log10(3) ~ 4.77 dB over a single antenna.
        assert 10 * np.log10(np.mean(gain) / reference) == pytest.approx(4.77, abs=0.3)

    def test_random_weights_no_gain(self):
        rng = np.random.default_rng(2)
        h = _random_h(rng, k=52)
        other = mrt_weights(_random_h(rng, k=52))  # weights for another channel
        gain = beamforming_gain(h, other)
        reference = np.mean(np.abs(h) ** 2)
        assert 10 * np.log10(np.mean(gain) / reference) < 2.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            mrt_weights(np.ones(52))
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            beamforming_gain(_random_h(rng), mrt_weights(_random_h(rng, k=7)))


class TestZeroForcing:
    def test_nulls_other_users(self):
        rng = np.random.default_rng(4)
        h_users = np.stack([_random_h(rng) for _ in range(3)])
        weights = zero_forcing_weights(h_users)
        for u in range(3):
            for v in range(3):
                leak = beamforming_gain(h_users[u], weights[v])
                signal = beamforming_gain(h_users[u], weights[u])
                if u != v:
                    assert np.mean(leak) < np.mean(signal) * 1e-6

    def test_unit_norm_weights(self):
        rng = np.random.default_rng(5)
        h_users = np.stack([_random_h(rng) for _ in range(2)])
        weights = zero_forcing_weights(h_users)
        assert np.allclose(np.linalg.norm(weights, axis=2), 1.0)

    def test_too_many_users_rejected(self):
        rng = np.random.default_rng(6)
        h_users = np.stack([_random_h(rng, t=3) for _ in range(4)])
        with pytest.raises(ValueError):
            zero_forcing_weights(h_users)

    def test_stale_csi_leaks_interference(self):
        """The Fig. 12 mechanism."""
        rng = np.random.default_rng(7)
        h_users = np.stack([_random_h(rng) for _ in range(3)])
        weights = zero_forcing_weights(h_users)
        moved = h_users.copy()
        moved[0] = _random_h(rng)  # user 0 moved: its channel re-randomised
        leak_into_0 = sum(
            np.mean(beamforming_gain(moved[0], weights[v])) for v in (1, 2)
        )
        signal_0 = np.mean(beamforming_gain(moved[0], weights[0]))
        # The stale precoder no longer separates user 0's signal from leaks.
        assert leak_into_0 > signal_0 * 0.1


class TestFeedbackSchedulers:
    def test_fixed_period(self):
        scheduler = FixedPeriodFeedback(100.0)
        assert scheduler.due(0.0)
        scheduler.mark(0.0)
        assert not scheduler.due(0.05)
        assert scheduler.due(0.11)

    def test_mobility_aware_follows_policy(self):
        table = default_policy_table()
        scheduler = MobilityAwareFeedback(policy_table=table)
        scheduler.update_hint(MobilityEstimate(0.0, MobilityMode.STATIC))
        assert scheduler.period_s() == pytest.approx(
            table.lookup(MobilityMode.STATIC).su_bf_feedback_ms / 1000.0
        )
        scheduler.update_hint(
            MobilityEstimate(1.0, MobilityMode.MACRO, Heading.AWAY, tof_window_full=True)
        )
        assert scheduler.period_s() == pytest.approx(
            table.lookup(MobilityMode.MACRO, Heading.AWAY).su_bf_feedback_ms / 1000.0
        )

    def test_mu_mimo_column(self):
        table = default_policy_table()
        scheduler = MobilityAwareFeedback(policy_table=table, mu_mimo=True)
        scheduler.update_hint(
            MobilityEstimate(0.0, MobilityMode.MACRO, Heading.AWAY, tof_window_full=True)
        )
        assert scheduler.period_s() == pytest.approx(
            table.lookup(MobilityMode.MACRO, Heading.AWAY).mu_mimo_feedback_ms / 1000.0
        )

    def test_reset(self):
        scheduler = FixedPeriodFeedback(50.0)
        scheduler.mark(1.0)
        scheduler.reset()
        assert scheduler.due(0.0)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            FixedPeriodFeedback(0.0)


def _bf_trace(trajectory_cls, seed, duration=6.0, **kwargs):
    cfg = ChannelConfig(n_rx=1, rician_k_db=-5.0, n_paths=16)
    ap = Point(0.0, 0.0)
    start = Point(15.0, 5.0)
    if trajectory_cls is StaticTrajectory:
        trajectory = StaticTrajectory(start).sample(duration, 0.005)
    else:
        trajectory = trajectory_cls(start, seed=seed, **kwargs).sample(duration, 0.005)
    link = LinkChannel(ap, cfg, seed=seed)
    return link.evaluate(trajectory.times, trajectory.positions, include_h=True)


class TestSuBeamforming:
    def test_static_link_keeps_array_gain(self):
        trace = _bf_trace(StaticTrajectory, seed=10)
        result = simulate_su_beamforming(trace, FixedPeriodFeedback(500.0), seed=1)
        assert result.mean_gain_db > 3.0

    def test_walking_link_loses_gain_with_slow_feedback(self):
        trace = _bf_trace(WaypointWalkTrajectory, seed=11, area=(-40, -40, 40, 40))
        slow = simulate_su_beamforming(trace, FixedPeriodFeedback(2000.0), seed=2)
        fast = simulate_su_beamforming(trace, FixedPeriodFeedback(20.0), seed=2)
        assert fast.mean_gain_db > slow.mean_gain_db + 1.0

    def test_overhead_grows_with_feedback_rate(self):
        trace = _bf_trace(StaticTrajectory, seed=12)
        fast = simulate_su_beamforming(trace, FixedPeriodFeedback(20.0), seed=3)
        slow = simulate_su_beamforming(trace, FixedPeriodFeedback(2000.0), seed=3)
        assert fast.overhead_fraction > slow.overhead_fraction
        assert fast.n_feedbacks > slow.n_feedbacks

    def test_requires_csi(self):
        trace = _bf_trace(StaticTrajectory, seed=13)
        import dataclasses

        no_h = dataclasses.replace(trace, h=None)
        with pytest.raises(ValueError):
            simulate_su_beamforming(no_h, FixedPeriodFeedback(100.0))


class TestMuMimo:
    def _three_traces(self, seed=20, duration=4.0):
        cfg = ChannelConfig(n_rx=1, rician_k_db=-5.0, n_paths=16)
        ap = Point(0.0, 0.0)
        rng = np.random.default_rng(seed)
        traces = []
        for i in range(3):
            start = Point(12.0 + 4 * i, 3.0 * (i - 1))
            trajectory = StaticTrajectory(start).sample(duration, 0.005)
            link = LinkChannel(ap, cfg, seed=seed + i)
            traces.append(link.evaluate(trajectory.times, trajectory.positions, include_h=True))
        del rng
        return traces

    def test_serves_three_clients(self):
        traces = self._three_traces()
        emulator = MuMimoEmulator(seed=1)
        result = emulator.run(traces, [FixedPeriodFeedback(50.0) for _ in range(3)])
        assert len(result.per_client_throughput_mbps) == 3
        assert all(t > 0 for t in result.per_client_throughput_mbps)
        assert result.network_throughput_mbps == pytest.approx(
            sum(result.per_client_throughput_mbps)
        )

    def test_overhead_scales_with_feedback(self):
        traces = self._three_traces()
        fast = MuMimoEmulator(seed=2).run(traces, [FixedPeriodFeedback(20.0)] * 3)
        slow = MuMimoEmulator(seed=2).run(traces, [FixedPeriodFeedback(500.0)] * 3)
        assert fast.overhead_fraction > slow.overhead_fraction

    def test_needs_at_least_two_clients(self):
        traces = self._three_traces()
        with pytest.raises(ValueError):
            MuMimoEmulator(seed=3).run(traces[:1], [FixedPeriodFeedback(50.0)])

    def test_scheduler_count_must_match(self):
        traces = self._three_traces()
        with pytest.raises(ValueError):
            MuMimoEmulator(seed=4).run(traces, [FixedPeriodFeedback(50.0)] * 2)

    def test_static_clients_tolerate_slow_feedback(self):
        """Fig. 12(a): static-ish clients degrade little with period."""
        traces = self._three_traces(duration=4.0)
        fast = MuMimoEmulator(seed=5).run(traces, [FixedPeriodFeedback(20.0)] * 3)
        slow = MuMimoEmulator(seed=5).run(traces, [FixedPeriodFeedback(200.0)] * 3)
        # Static clients: slow feedback must not collapse throughput.
        assert slow.network_throughput_mbps > fast.network_throughput_mbps * 0.6
