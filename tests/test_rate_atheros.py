"""Unit tests for the Atheros RA engine and its mobility-aware wrapper."""

import pytest

from repro.core.hints import MobilityEstimate
from repro.core.policy import default_policy_table
from repro.mac.aggregation import AggregatedFrameResult
from repro.mobility.modes import Heading, MobilityMode
from repro.rate.atheros import (
    DOWN_PER_THRESHOLD,
    MAX_DOWN_STEPS_PER_FAILURE_RUN,
    AtherosRateAdaptation,
)
from repro.rate.mobility_aware import MobilityAwareAtherosRA


def frame(mcs, delivered, total=32):
    return AggregatedFrameResult(
        mcs_index=mcs,
        n_mpdus=total,
        n_delivered=delivered,
        airtime_s=0.004,
        mpdu_payload_bytes=1500,
        block_ack_received=delivered > 0,
    )


class TestAtheros:
    def test_starts_at_highest_rate(self):
        ra = AtherosRateAdaptation()
        assert ra.select(0.0) == ra.ladder[-1]

    def test_steps_down_on_block_ack_miss(self):
        ra = AtherosRateAdaptation(retries_before_down=0)
        top = ra.current_mcs
        ra.observe(0.0, frame(top, 0))
        assert ra.current_mcs == ra.ladder[-2]

    def test_retries_ride_out_transient_loss(self):
        """The paper's Section 4.2 mechanism."""
        ra = AtherosRateAdaptation(retries_before_down=2)
        top = ra.current_mcs
        ra.observe(0.0, frame(top, 0))
        ra.observe(0.004, frame(top, 0))
        assert ra.current_mcs == top  # still retrying
        ra.observe(0.008, frame(top, 0))
        assert ra.current_mcs == ra.ladder[-2]  # third failure steps down

    def test_success_resets_retry_count(self):
        ra = AtherosRateAdaptation(retries_before_down=1)
        top = ra.current_mcs
        ra.observe(0.0, frame(top, 0))
        ra.observe(0.004, frame(top, 32))  # success clears the run
        ra.observe(0.008, frame(top, 0))
        assert ra.current_mcs == top  # one failure again tolerated

    def test_failure_run_ratchet_capped(self):
        """A 30 ms interference burst (~10 frames) cannot reach the floor."""
        ra = AtherosRateAdaptation(retries_before_down=0)
        start_position = ra.position
        for i in range(10):
            ra.observe(0.004 * i, frame(ra.current_mcs, 0))
        assert start_position - ra.position == MAX_DOWN_STEPS_PER_FAILURE_RUN

    def test_persistent_failure_still_escapes(self):
        """A genuinely dead rate region is escaped via the slow crawl."""
        ra = AtherosRateAdaptation(retries_before_down=0)
        for i in range(200):
            ra.observe(0.004 * i, frame(ra.current_mcs, 0))
        assert ra.position == 0

    def test_high_per_steps_down(self):
        ra = AtherosRateAdaptation(alpha=1.0)  # no smoothing: react at once
        top = ra.current_mcs
        bad = int(32 * (1 - DOWN_PER_THRESHOLD) - 1)
        ra.observe(0.0, frame(top, bad))
        assert ra.current_mcs == ra.ladder[-2]

    def test_per_ewma_uses_alpha(self):
        ra = AtherosRateAdaptation(alpha=0.5)
        mcs = ra.current_mcs
        ra.observe(0.0, frame(mcs, 16))  # instantaneous PER 0.5
        assert ra.per_estimate(mcs) == pytest.approx(0.25)

    def test_monotonicity_propagates_upward(self):
        ra = AtherosRateAdaptation(alpha=1.0)
        low = ra.ladder[2]
        ra.observe(0.0, frame(low, 16))  # PER 0.5 at a low rate
        for higher in ra.ladder[3:]:
            assert ra.per_estimate(higher) >= 0.5

    def test_monotonicity_propagates_downward(self):
        ra = AtherosRateAdaptation(alpha=1.0)
        high = ra.ladder[-1]
        # Perfect delivery at the top rate pulls lower rates' PER to 0.
        ra.observe(0.0, frame(high, 32))
        for lower in ra.ladder[:-1]:
            assert ra.per_estimate(lower) == 0.0

    def test_probes_after_interval(self):
        ra = AtherosRateAdaptation(probe_interval_s=0.1)
        ra.set_position(3)
        assert ra.select(0.05) == ra.ladder[3]  # too early
        probe = ra.select(0.15)
        assert probe == ra.ladder[4]

    def test_successful_probe_moves_up(self):
        ra = AtherosRateAdaptation(probe_interval_s=0.1)
        ra.set_position(3)
        probe = ra.select(0.2)
        ra.observe(0.2, frame(probe, 32))
        assert ra.position == 4

    def test_failed_probe_stays(self):
        ra = AtherosRateAdaptation(probe_interval_s=0.1)
        ra.set_position(3)
        probe = ra.select(0.2)
        ra.observe(0.2, frame(probe, 0))
        assert ra.position == 3

    def test_no_probe_beyond_top(self):
        ra = AtherosRateAdaptation(probe_interval_s=0.01)
        assert ra.select(10.0) == ra.ladder[-1]

    def test_reset(self):
        ra = AtherosRateAdaptation()
        ra.observe(0.0, frame(ra.current_mcs, 0))
        ra.reset()
        assert ra.current_mcs == ra.ladder[-1]
        assert ra.per_estimate(ra.ladder[-1]) == 0.0

    def test_expected_throughput_objective(self):
        ra = AtherosRateAdaptation(alpha=1.0)
        mcs = ra.ladder[-1]
        ra.observe(0.0, frame(mcs, 16))
        assert ra.expected_throughput_mbps(mcs) == pytest.approx(270.0 * 0.5)


class TestMobilityAware:
    def _estimate(self, mode, heading=Heading.NONE):
        return MobilityEstimate(0.0, mode, heading, tof_window_full=True)

    def test_hint_applies_policy(self):
        ra = MobilityAwareAtherosRA()
        table = default_policy_table()
        ra.update_hint(self._estimate(MobilityMode.STATIC))
        policy = table.lookup(MobilityMode.STATIC)
        assert ra.inner.alpha == policy.per_smoothing_factor
        assert ra.inner.retries_before_down == policy.rate_retries
        assert ra.inner.probe_interval_s == pytest.approx(policy.probe_interval_ms / 1000)

    def test_moving_away_reacts_immediately(self):
        ra = MobilityAwareAtherosRA()
        ra.update_hint(self._estimate(MobilityMode.MACRO, Heading.AWAY))
        top = ra.select(0.0)
        ra.observe(0.0, frame(top, 0))
        assert ra.inner.position == len(ra.inner.ladder) - 2

    def test_micro_rides_out_one_loss(self):
        ra = MobilityAwareAtherosRA()
        ra.update_hint(self._estimate(MobilityMode.MICRO))
        top = ra.select(0.0)
        ra.observe(0.0, frame(top, 0))
        assert ra.inner.position == len(ra.inner.ladder) - 1  # retried

    def test_towards_probes_aggressively(self):
        ra = MobilityAwareAtherosRA()
        ra.update_hint(self._estimate(MobilityMode.MACRO, Heading.TOWARDS))
        assert ra.inner.probe_interval_s <= 0.05

    def test_reset_clears_hint(self):
        ra = MobilityAwareAtherosRA()
        ra.update_hint(self._estimate(MobilityMode.MICRO))
        ra.reset()
        assert ra.current_estimate is None
