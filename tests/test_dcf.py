"""Tests for the DCF contention model, validated against Bianchi's analysis."""

import numpy as np
import pytest

from repro.mac.dcf import (
    DcfParameters,
    DcfSimulator,
    bianchi_saturation,
    contention_efficiency,
)


class TestBianchiModel:
    def test_single_station_never_collides(self):
        tau, p, efficiency = bianchi_saturation(1)
        assert p == 0.0
        assert 0.0 < tau <= 2.0 / (DcfParameters().cw_min + 1) + 1e-9
        assert efficiency > 0.5

    def test_collision_probability_grows_with_stations(self):
        probabilities = [bianchi_saturation(n)[1] for n in (2, 5, 10, 25, 50)]
        assert probabilities == sorted(probabilities)
        assert probabilities[-1] > 0.4

    def test_efficiency_decreases_with_contention(self):
        efficiencies = [bianchi_saturation(n)[2] for n in (1, 5, 15, 40)]
        assert efficiencies == sorted(efficiencies, reverse=True)

    def test_known_regime(self):
        # With CWmin 16 and ~2 ms frames, saturation efficiency stays high
        # for small n (long frames amortise contention) — a classic result.
        _, _, efficiency = bianchi_saturation(10)
        assert 0.5 < efficiency < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bianchi_saturation(0)
        with pytest.raises(ValueError):
            DcfParameters(cw_min=1)


class TestContentionEfficiency:
    def test_one_station_is_reference(self):
        assert contention_efficiency(1) == pytest.approx(1.0, abs=0.02)

    def test_monotone_degradation(self):
        values = [contention_efficiency(n) for n in (1, 3, 8, 20)]
        assert values == sorted(values, reverse=True)
        assert values[-1] > 0.3  # DCF never collapses completely at n=20


class TestSimulatorAgainstAnalysis:
    @pytest.mark.parametrize("n_stations", [2, 5, 10])
    def test_collision_rate_matches_bianchi(self, n_stations):
        simulator = DcfSimulator(seed=1)
        result = simulator.run(n_stations, n_transmissions=4000)
        measured_collision_rate = result.collisions / (
            result.collisions + result.total_successes
        )
        _, p, _ = bianchi_saturation(n_stations)
        # p is the *conditional* collision probability per transmission
        # attempt of one station; the per-channel-event collision fraction
        # is related but smaller.  Check the trend window generously.
        assert measured_collision_rate < p + 0.1
        if n_stations >= 5:
            assert measured_collision_rate > 0.02

    def test_single_station_no_collisions(self):
        result = DcfSimulator(seed=2).run(1, n_transmissions=500)
        assert result.collisions == 0
        assert result.per_station_successes[0] == 500

    def test_long_run_fairness(self):
        result = DcfSimulator(seed=3).run(8, n_transmissions=8000)
        assert result.fairness_index > 0.95  # DCF is long-term fair

    def test_efficiency_tracks_analysis(self):
        for n_stations in (2, 8):
            result = DcfSimulator(seed=4).run(n_stations, n_transmissions=6000)
            _, _, predicted = bianchi_saturation(n_stations)
            assert result.efficiency == pytest.approx(predicted, rel=0.15)

    def test_deterministic(self):
        a = DcfSimulator(seed=5).run(4, n_transmissions=500)
        b = DcfSimulator(seed=5).run(4, n_transmissions=500)
        assert a.per_station_successes == b.per_station_successes
