"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.similarity import csi_similarity
from repro.core.tof_trend import ToFTrend, detect_trend
from repro.mac.aggregation import FrameTransmitter
from repro.phy.error import ErrorModel, sinr_with_stale_estimate
from repro.phy.mcs import MCS_TABLE, mcs_by_index
from repro.util.filters import ExponentialMovingAverage, MedianFilter, MovingWindow
from repro.util.special import bessel_j0
from repro.util.stats import EmpiricalCDF

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
small_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)

gain_vectors = arrays(
    dtype=float,
    shape=st.integers(min_value=4, max_value=64),
    elements=st.floats(min_value=0.01, max_value=10.0),
)


class TestSimilarityProperties:
    @given(gain_vectors)
    def test_self_similarity_is_one(self, gains):
        assume(np.std(gains) > 1e-6)
        assert csi_similarity(gains, gains) == pytest.approx(1.0)

    @given(gain_vectors, st.floats(min_value=0.1, max_value=10.0))
    def test_scale_invariance(self, gains, scale):
        assume(np.std(gains) > 1e-6)
        assert csi_similarity(gains, gains * scale) == pytest.approx(1.0, abs=1e-9)

    @given(st.data())
    def test_symmetry(self, data):
        n = data.draw(st.integers(min_value=4, max_value=32))
        elements = st.floats(min_value=0.01, max_value=10.0)
        a = np.array(data.draw(st.lists(elements, min_size=n, max_size=n)))
        b = np.array(data.draw(st.lists(elements, min_size=n, max_size=n)))
        assert csi_similarity(a, b) == pytest.approx(csi_similarity(b, a))

    @given(st.data())
    def test_bounded(self, data):
        n = data.draw(st.integers(min_value=4, max_value=32))
        elements = st.floats(min_value=0.01, max_value=10.0)
        a = np.array(data.draw(st.lists(elements, min_size=n, max_size=n)))
        b = np.array(data.draw(st.lists(elements, min_size=n, max_size=n)))
        assert -1.0 - 1e-9 <= csi_similarity(a, b) <= 1.0 + 1e-9


class TestFilterProperties:
    @given(st.lists(small_floats, min_size=1, max_size=100), st.floats(min_value=0.01, max_value=1.0))
    def test_ewma_stays_within_sample_range(self, samples, alpha):
        ewma = ExponentialMovingAverage(alpha)
        for sample in samples:
            ewma.update(sample)
        assert min(samples) - 1e-9 <= ewma.value <= max(samples) + 1e-9

    @given(st.lists(small_floats, min_size=1, max_size=50), st.integers(min_value=1, max_value=10))
    def test_window_median_within_range(self, samples, capacity):
        window = MovingWindow(capacity)
        window.extend(samples)
        kept = samples[-capacity:]
        assert min(kept) <= window.median() <= max(kept)

    @given(st.lists(small_floats, min_size=1, max_size=60), st.integers(min_value=1, max_value=12))
    def test_median_filter_emission_count(self, samples, batch):
        median = MedianFilter(batch)
        emitted = sum(1 for s in samples if median.push(s) is not None)
        assert emitted == len(samples) // batch

    @given(st.lists(small_floats, min_size=2, max_size=60))
    def test_cdf_percentiles_ordered(self, samples):
        cdf = EmpiricalCDF(samples)
        assert cdf.percentile(10) <= cdf.percentile(50) <= cdf.percentile(90)


class TestTrendProperties:
    @given(st.lists(small_floats, min_size=2, max_size=10))
    def test_trend_is_antisymmetric(self, medians):
        up = detect_trend(medians, 0.5, 1.0)
        down = detect_trend([-m for m in medians], 0.5, 1.0)
        flipped = {
            ToFTrend.INCREASING: ToFTrend.DECREASING,
            ToFTrend.DECREASING: ToFTrend.INCREASING,
            ToFTrend.NONE: ToFTrend.NONE,
        }
        assert down == flipped[up]

    @given(st.lists(small_floats, min_size=2, max_size=10), small_floats)
    def test_trend_is_offset_invariant(self, medians, offset):
        a = detect_trend(medians, 0.5, 1.0)
        b = detect_trend([m + offset for m in medians], 0.5, 1.0)
        assert a == b

    @given(
        st.floats(min_value=1.05, max_value=50.0),
        st.integers(min_value=3, max_value=8),
    )
    def test_clean_ramp_always_detected(self, net, n):
        medians = list(np.linspace(0.0, net, n))
        assert detect_trend(medians, 0.5, 1.0) == ToFTrend.INCREASING

    @given(st.floats(min_value=0.0, max_value=0.99))
    def test_small_net_never_trends(self, net):
        medians = [0.0, net / 3, 2 * net / 3, net]
        assert detect_trend(medians, 1.0, 1.0) == ToFTrend.NONE


class TestErrorModelProperties:
    @given(
        st.integers(min_value=0, max_value=15),
        st.floats(min_value=-10.0, max_value=50.0),
    )
    def test_per_is_probability(self, mcs, snr):
        per = ErrorModel().per(mcs, snr)
        assert 0.0 <= per <= 1.0

    @given(
        st.integers(min_value=0, max_value=15),
        st.floats(min_value=-10.0, max_value=50.0),
        st.floats(min_value=0.0, max_value=10.0),
    )
    def test_per_monotone_in_snr(self, mcs, snr, delta):
        model = ErrorModel()
        assert model.per(mcs, snr + delta) <= model.per(mcs, snr) + 1e-12

    @given(
        st.floats(min_value=-10.0, max_value=50.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_stale_sinr_never_exceeds_snr(self, snr, rho):
        assert sinr_with_stale_estimate(snr, rho) <= snr + 1e-9

    @given(st.floats(min_value=-5.0, max_value=45.0))
    def test_best_mcs_goodput_dominates_all(self, snr):
        model = ErrorModel()
        best = model.best_mcs(snr)
        best_goodput = mcs_by_index(best).rate_mbps(40e6) * (1.0 - model.per(best, snr))
        for m in MCS_TABLE:
            goodput = m.rate_mbps(40e6) * (1.0 - model.per(m, snr))
            assert best_goodput >= goodput - 1e-9


class TestMacProperties:
    @settings(max_examples=25)
    @given(
        st.integers(min_value=0, max_value=15),
        st.floats(min_value=0.0, max_value=45.0),
        st.floats(min_value=0.0, max_value=40.0),
        st.floats(min_value=0.001, max_value=0.010),
    )
    def test_transmit_invariants(self, mcs, snr, doppler, agg_time):
        transmitter = FrameTransmitter(seed=1)
        result = transmitter.transmit(mcs, snr, doppler, agg_time)
        assert 1 <= result.n_mpdus <= 64
        assert 0 <= result.n_delivered <= result.n_mpdus
        assert result.airtime_s > agg_time * 0.0  # positive
        assert result.block_ack_received == (result.n_delivered > 0)

    @settings(max_examples=25)
    @given(
        st.integers(min_value=0, max_value=15),
        st.floats(min_value=0.001, max_value=0.010),
    )
    def test_goodput_bounded_by_phy_rate(self, mcs, agg_time):
        transmitter = FrameTransmitter(seed=2)
        goodput = transmitter.expected_goodput_mbps(mcs, 50.0, 0.0, agg_time)
        assert goodput <= mcs_by_index(mcs).rate_mbps(40e6)


class TestBesselProperties:
    @given(st.floats(min_value=0.0, max_value=50.0))
    def test_j0_bounded(self, x):
        assert abs(bessel_j0(x)) <= 1.0 + 1e-7

    @given(st.floats(min_value=2.5, max_value=50.0))
    def test_j0_decaying_envelope(self, x):
        # |J0(x)| <= sqrt(2/(pi x)) * 1.1 for x beyond the first zero.
        assert abs(bessel_j0(x)) <= math.sqrt(2.0 / (math.pi * x)) * 1.1
