"""Unit tests for the channel substrate: propagation, paths, link model."""

import numpy as np
import pytest

from repro.channel.config import ChannelConfig
from repro.channel.model import LinkChannel
from repro.channel.paths import draw_path_set, steering_vector
from repro.channel.perturbations import LinkPerturbations, PerturbationConfig, trace_seed
from repro.channel.propagation import ShadowingProcess, free_space_path_loss_db, path_loss_db
from repro.core.similarity import csi_similarity_series
from repro.mobility.environment import EnvironmentActivity, EnvironmentProcess
from repro.mobility.trajectory import StaticTrajectory, WaypointWalkTrajectory
from repro.util.geometry import Point

AP = Point(0.0, 0.0)
CLIENT = Point(10.0, 5.0)


class TestConfig:
    def test_subcarrier_layout(self):
        cfg = ChannelConfig()
        offsets = cfg.subcarrier_offsets_hz()
        assert len(offsets) == cfg.n_subcarriers
        assert 0.0 not in offsets  # DC excluded
        assert offsets[0] == -offsets[-1]  # symmetric

    def test_doppler(self):
        cfg = ChannelConfig()
        assert cfg.doppler_hz(1.2) == pytest.approx(1.2 / cfg.wavelength_m)
        with pytest.raises(ValueError):
            cfg.doppler_hz(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelConfig(n_subcarriers=1)
        with pytest.raises(ValueError):
            ChannelConfig(n_paths=0)


class TestPathLoss:
    def test_friis_at_one_metre(self):
        # ~47.7 dB at 5.825 GHz.
        assert free_space_path_loss_db(1.0, 5.825e9) == pytest.approx(47.75, abs=0.1)

    def test_monotone_in_distance(self):
        distances = np.array([1.0, 3.0, 5.0, 10.0, 30.0])
        losses = path_loss_db(distances, 5.825e9)
        assert np.all(np.diff(losses) > 0)

    def test_breakpoint_slope_change(self):
        # Below the breakpoint the slope is ~20 dB/decade; above, steeper.
        near = path_loss_db(4.0, 5.825e9) - path_loss_db(2.0, 5.825e9)
        far = path_loss_db(40.0, 5.825e9) - path_loss_db(20.0, 5.825e9)
        assert far > near

    def test_continuous_at_breakpoint(self):
        just_below = path_loss_db(4.999, 5.825e9, breakpoint_m=5.0)
        just_above = path_loss_db(5.001, 5.825e9, breakpoint_m=5.0)
        assert just_above == pytest.approx(just_below, abs=0.05)

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            path_loss_db(0.0, 5.825e9)


class TestShadowing:
    def test_static_client_keeps_value(self):
        shadow = ShadowingProcess(5.0, 3.0, seed=1)
        first = shadow.value_db
        for _ in range(10):
            shadow.advance(0.0)
        assert shadow.value_db == first

    def test_decorrelates_with_distance(self):
        values_near = []
        values_far = []
        for seed in range(200):
            a = ShadowingProcess(5.0, 3.0, seed=seed)
            start = a.value_db
            a.advance(0.5)
            values_near.append((start, a.value_db))
            b = ShadowingProcess(5.0, 3.0, seed=seed + 1000)
            start = b.value_db
            b.advance(30.0)
            values_far.append((start, b.value_db))
        corr_near = np.corrcoef(*zip(*values_near))[0, 1]
        corr_far = np.corrcoef(*zip(*values_far))[0, 1]
        assert corr_near > 0.7
        assert abs(corr_far) < 0.35

    def test_zero_sigma_is_flat(self):
        shadow = ShadowingProcess(0.0, 3.0, seed=2)
        assert shadow.value_db == 0.0
        shadow.advance(100.0)
        assert shadow.value_db == 0.0

    def test_trace_matches_sequential_advances(self):
        steps = np.array([0.0, 1.0, 2.0, 0.5])
        a = ShadowingProcess(4.0, 5.0, seed=3)
        got = a.trace(steps)
        assert got.shape == (4,)


class TestPathSet:
    def test_power_normalised(self):
        paths = draw_path_set(ChannelConfig(), los_angle_rad=0.3, seed=1)
        assert paths.total_power() == pytest.approx(1.0)

    def test_los_first(self):
        paths = draw_path_set(ChannelConfig(), los_angle_rad=0.3, seed=2)
        assert paths.excess_delays_s[0] == 0.0
        assert np.all(paths.excess_delays_s[1:] > 0)

    def test_los_power_follows_rician_k(self):
        strong = draw_path_set(ChannelConfig(rician_k_db=10.0), 0.0, seed=3)
        weak = draw_path_set(ChannelConfig(rician_k_db=-10.0), 0.0, seed=3)
        assert abs(strong.amplitudes[0]) > abs(weak.amplitudes[0])

    def test_arrival_unit_vectors(self):
        paths = draw_path_set(ChannelConfig(), 0.0, seed=4)
        units = paths.arrival_unit_vectors()
        assert np.allclose(np.hypot(units[:, 0], units[:, 1]), 1.0)

    def test_steering_vector_magnitudes(self):
        steering = steering_vector(np.array([0.1, 0.9]), 3)
        assert steering.shape == (2, 3)
        assert np.allclose(np.abs(steering), 1.0)


class TestLinkChannel:
    def _evaluate(self, trajectory, environment=None, seed=42, **cfg_kwargs):
        cfg = ChannelConfig(**cfg_kwargs)
        link = LinkChannel(AP, cfg, environment=environment, seed=seed)
        return link.evaluate(trajectory.times, trajectory.positions, include_h=True)

    def test_shapes(self):
        trajectory = StaticTrajectory(CLIENT).sample(2.0, 0.1)
        trace = self._evaluate(trajectory)
        cfg = ChannelConfig()
        assert trace.h.shape == (20, cfg.n_subcarriers, cfg.n_tx, cfg.n_rx)
        assert len(trace.snr_db) == 20

    def test_static_channel_is_stable(self):
        trajectory = StaticTrajectory(CLIENT).sample(10.0, 0.1)
        trace = self._evaluate(trajectory)
        sims = csi_similarity_series(trace.h, lag=5)
        assert np.mean(sims) > 0.985

    def test_walking_channel_decorrelates(self):
        trajectory = WaypointWalkTrajectory(CLIENT, area=(-40, -40, 40, 40), seed=1).sample(
            10.0, 0.1
        )
        trace = self._evaluate(trajectory)
        sims = csi_similarity_series(trace.h, lag=5)
        assert np.mean(sims) < 0.7

    def test_environment_sits_between(self):
        trajectory = StaticTrajectory(CLIENT).sample(20.0, 0.1)
        env = EnvironmentProcess.from_activity(EnvironmentActivity.STRONG)
        trace = self._evaluate(trajectory, environment=env)
        sims = csi_similarity_series(trace.h, lag=5)
        assert 0.55 < np.mean(sims) < 0.985

    def test_rssi_decreases_with_distance(self):
        near = StaticTrajectory(Point(5.0, 0.0)).sample(2.0, 0.1)
        far = StaticTrajectory(Point(30.0, 0.0)).sample(2.0, 0.1)
        rssi_near = np.mean(self._evaluate(near, seed=5).rssi_dbm)
        rssi_far = np.mean(self._evaluate(far, seed=5).rssi_dbm)
        assert rssi_near > rssi_far + 10.0

    def test_effective_snr_not_above_mean_snr(self):
        trajectory = StaticTrajectory(CLIENT).sample(5.0, 0.1)
        trace = self._evaluate(trajectory)
        # Geometric band mean <= arithmetic band mean.
        assert np.all(trace.effective_snr_db <= trace.snr_db + 1e-9)

    def test_doppler_tracks_speed(self):
        walk = WaypointWalkTrajectory(CLIENT, area=(-40, -40, 40, 40), seed=2).sample(5.0, 0.05)
        trace = self._evaluate(walk)
        cfg = ChannelConfig()
        expected = np.median(walk.speeds()) / cfg.wavelength_m
        assert np.median(trace.doppler_hz) == pytest.approx(expected, rel=0.25)

    def test_state_continuity_across_calls(self):
        cfg = ChannelConfig()
        link = LinkChannel(AP, cfg, seed=10)
        t1 = StaticTrajectory(CLIENT).sample(2.0, 0.1)
        first = link.evaluate(t1.times, t1.positions, include_h=True)
        second = link.evaluate(t1.times + 2.0, t1.positions, include_h=True)
        # Same ray set: consecutive static evaluations stay highly similar.
        from repro.core.similarity import csi_similarity

        assert csi_similarity(first.h[-1], second.h[0]) > 0.95

    def test_measured_csi_noise_scales_with_snr(self):
        trajectory = StaticTrajectory(CLIENT).sample(2.0, 0.1)
        trace = self._evaluate(trajectory)
        measured = trace.measured_csi(0, smooth_subcarriers=1)
        error = np.mean(np.abs(measured - trace.h) ** 2)
        signal = np.mean(np.abs(trace.h) ** 2)
        expected = signal / 10 ** ((np.mean(trace.snr_db) + 10.0) / 10.0)
        assert error == pytest.approx(expected, rel=0.5)

    def test_uniform_grid_required(self):
        link = LinkChannel(AP, ChannelConfig(), seed=11)
        times = np.array([0.0, 0.1, 0.3])
        positions = np.zeros((3, 2)) + 5.0
        with pytest.raises(ValueError):
            link.evaluate(times, positions)

    def test_environmental_blockage_raises_rssi_variance(self):
        trajectory = StaticTrajectory(CLIENT).sample(60.0, 0.05)
        quiet = self._evaluate(trajectory, seed=12)
        env = EnvironmentProcess.from_activity(EnvironmentActivity.STRONG)
        busy = self._evaluate(trajectory, environment=env, seed=12)
        assert np.std(busy.rssi_dbm) > np.std(quiet.rssi_dbm) * 1.5


class TestPerturbations:
    def test_burst_schedule_deterministic(self):
        a = LinkPerturbations(0.0, 60.0, seed=5)
        b = LinkPerturbations(0.0, 60.0, seed=5)
        assert a.bursts == b.bursts

    def test_burst_rate_roughly_matches(self):
        config = PerturbationConfig(interference_rate_hz=1.0)
        perturb = LinkPerturbations(0.0, 600.0, config, seed=6)
        assert 450 <= len(perturb.bursts) <= 750

    def test_fading_is_stationary_with_expected_std(self):
        config = PerturbationConfig(fading_jitter_db=2.0, interference_rate_hz=0.0)
        perturb = LinkPerturbations(0.0, 100.0, config, seed=7)
        samples = [perturb.advance(t, 20.0)[0] for t in np.arange(0.0, 100.0, 0.05)]
        assert np.std(samples) == pytest.approx(2.0, rel=0.25)

    def test_static_fading_barely_moves(self):
        config = PerturbationConfig(fading_jitter_db=2.0, interference_rate_hz=0.0)
        perturb = LinkPerturbations(0.0, 10.0, config, seed=8)
        samples = [perturb.advance(t, 0.15)[0] for t in np.arange(0.0, 5.0, 0.01)]
        assert np.std(np.diff(samples)) < 0.2

    def test_burst_flag_raised_inside_burst(self):
        config = PerturbationConfig(interference_rate_hz=5.0, interference_duration_s=0.1)
        perturb = LinkPerturbations(0.0, 20.0, config, seed=9)
        flags = [perturb.advance(t, 1.0)[1] for t in np.arange(0.0, 20.0, 0.005)]
        assert any(flags)
        assert not all(flags)

    def test_trace_seed_depends_on_content(self):
        assert trace_seed(np.array([1.0, 2.0])) != trace_seed(np.array([1.0, 3.0]))
