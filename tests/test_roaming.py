"""Unit tests for roaming schemes and the roaming simulator."""

import numpy as np
import pytest

from repro.channel.config import ChannelConfig
from repro.core.hints import MobilityEstimate
from repro.mobility.modes import Heading, MobilityMode
from repro.mobility.trajectory import StaticTrajectory, WaypointWalkTrajectory
from repro.roaming.base import NeighborObservation, RoamingContext
from repro.roaming.schemes import (
    ControllerRoaming,
    DefaultClientRoaming,
    SensorHintRoaming,
    StickToFirstAp,
    StrongestApOracle,
)
from repro.roaming.simulator import simulate_roaming
from repro.util.geometry import Point
from repro.wlan.floorplan import default_office_floorplan
from repro.wlan.multilink import MultiApChannel

# These tests go through the deprecated 1.1 shim entry points on purpose
# (pinning their behaviour); their DeprecationWarnings are expected here
# while CI escalates unexpected ones to errors.
pytestmark = pytest.mark.filterwarnings("ignore:simulate_:DeprecationWarning")


class FakeContext(RoamingContext):
    """Scriptable context for scheme unit tests."""

    def __init__(
        self,
        now=0.0,
        current=0,
        rssi={0: -60.0, 1: -70.0},
        moving=False,
        estimate=None,
        headings=None,
    ):
        self._now = now
        self._current = current
        self._rssi = dict(rssi)
        self._moving = moving
        self._estimate = estimate
        self._headings = headings or {ap: Heading.NONE for ap in rssi}
        self.scan_count = 0

    @property
    def now_s(self):
        return self._now

    @property
    def current_ap(self):
        return self._current

    @property
    def n_aps(self):
        return len(self._rssi)

    def current_rssi_dbm(self):
        return self._rssi[self._current]

    def scan(self):
        self.scan_count += 1
        return dict(self._rssi)

    def accelerometer_moving(self):
        return self._moving

    def mobility_estimate(self):
        return self._estimate

    def neighbor_report(self):
        return {
            ap: NeighborObservation(rssi_dbm=self._rssi[ap], heading=self._headings[ap])
            for ap in self._rssi
        }


def macro_away(t=0.0):
    return MobilityEstimate(t, MobilityMode.MACRO, Heading.AWAY, tof_window_full=True)


class TestDefaultRoaming:
    def test_no_scan_when_signal_strong(self):
        ctx = FakeContext(rssi={0: -55.0, 1: -40.0})
        decision = DefaultClientRoaming().decide(ctx)
        assert not decision.wants_roam
        assert ctx.scan_count == 0

    def test_scans_and_roams_when_weak(self):
        ctx = FakeContext(rssi={0: -80.0, 1: -55.0})
        decision = DefaultClientRoaming().decide(ctx)
        assert ctx.scan_count == 1
        assert decision.target_ap == 1
        assert not decision.forced

    def test_scan_holdoff(self):
        scheme = DefaultClientRoaming(scan_holdoff_s=5.0)
        ctx = FakeContext(now=0.0, rssi={0: -80.0, 1: -81.0})
        scheme.decide(ctx)
        ctx2 = FakeContext(now=1.0, rssi={0: -80.0, 1: -81.0})
        scheme.decide(ctx2)
        assert ctx2.scan_count == 0  # within holdoff

    def test_no_roam_without_better_ap(self):
        ctx = FakeContext(rssi={0: -80.0, 1: -81.0})
        decision = DefaultClientRoaming().decide(ctx)
        assert not decision.wants_roam


class TestSensorHintRoaming:
    def test_mobile_hint_triggers_periodic_scan(self):
        scheme = SensorHintRoaming(mobile_scan_period_s=5.0)
        ctx = FakeContext(rssi={0: -60.0, 1: -50.0}, moving=True)
        decision = scheme.decide(ctx)
        assert ctx.scan_count == 1
        assert decision.target_ap == 1

    def test_static_client_never_scans_early(self):
        scheme = SensorHintRoaming()
        ctx = FakeContext(rssi={0: -60.0, 1: -40.0}, moving=False)
        decision = scheme.decide(ctx)
        assert ctx.scan_count == 0
        assert not decision.wants_roam

    def test_margin_prevents_ping_pong(self):
        scheme = SensorHintRoaming(switch_margin_db=5.0)
        ctx = FakeContext(rssi={0: -60.0, 1: -58.0}, moving=True)
        decision = scheme.decide(ctx)
        assert not decision.wants_roam  # only 2 dB better


class TestControllerRoaming:
    def test_roams_when_away_and_candidate_exists(self):
        ctx = FakeContext(
            rssi={0: -70.0, 1: -65.0},
            estimate=macro_away(),
            headings={0: Heading.AWAY, 1: Heading.TOWARDS},
        )
        decision = ControllerRoaming().decide(ctx)
        assert decision.target_ap == 1
        assert decision.forced

    def test_ignores_stronger_ap_client_is_leaving(self):
        ctx = FakeContext(
            rssi={0: -70.0, 1: -60.0},
            estimate=macro_away(),
            headings={0: Heading.AWAY, 1: Heading.AWAY},  # moving away from both
        )
        decision = ControllerRoaming().decide(ctx)
        assert not decision.forced

    def test_static_client_untouched(self):
        ctx = FakeContext(
            rssi={0: -70.0, 1: -50.0},
            estimate=MobilityEstimate(0.0, MobilityMode.STATIC),
            headings={0: Heading.NONE, 1: Heading.TOWARDS},
        )
        decision = ControllerRoaming().decide(ctx)
        assert not decision.forced

    def test_moving_towards_current_ap_untouched(self):
        estimate = MobilityEstimate(
            0.0, MobilityMode.MACRO, Heading.TOWARDS, tof_window_full=True
        )
        ctx = FakeContext(
            rssi={0: -70.0, 1: -50.0},
            estimate=estimate,
            headings={0: Heading.TOWARDS, 1: Heading.TOWARDS},
        )
        decision = ControllerRoaming().decide(ctx)
        assert not decision.forced

    def test_cooldown(self):
        scheme = ControllerRoaming(roam_cooldown_s=5.0)
        ctx = FakeContext(
            now=0.0,
            rssi={0: -70.0, 1: -65.0},
            estimate=macro_away(),
            headings={0: Heading.AWAY, 1: Heading.TOWARDS},
        )
        assert scheme.decide(ctx).forced
        ctx2 = FakeContext(
            now=2.0,
            current=1,
            rssi={0: -60.0, 1: -70.0},
            estimate=macro_away(2.0),
            headings={0: Heading.TOWARDS, 1: Heading.AWAY},
        )
        assert not scheme.decide(ctx2).forced  # cooldown active

    def test_candidate_needs_comparable_rssi(self):
        ctx = FakeContext(
            rssi={0: -60.0, 1: -75.0},
            estimate=macro_away(),
            headings={0: Heading.AWAY, 1: Heading.TOWARDS},
        )
        decision = ControllerRoaming(candidate_margin_db=0.0).decide(ctx)
        assert not decision.forced  # candidate much weaker


class TestSimulator:
    ROAM_CFG = ChannelConfig(tx_power_dbm=8.0)

    def _multi(self, trajectory, seed=1, include_h=False):
        floorplan = default_office_floorplan()
        channel = MultiApChannel(floorplan, self.ROAM_CFG, seed=seed)
        return channel.evaluate(trajectory, sample_interval_s=0.1, include_h=include_h)

    def test_stick_never_roams(self):
        trajectory = WaypointWalkTrajectory(Point(5, 5), area=(1, 1, 39, 24), seed=2).sample(
            20.0, 0.02
        )
        multi = self._multi(trajectory)
        result = simulate_roaming(multi, StickToFirstAp(), seed=3)
        assert len(result.handoffs) == 0
        assert len(set(result.ap_timeline.tolist())) == 1

    def test_oracle_tracks_strongest(self):
        trajectory = WaypointWalkTrajectory(Point(5, 5), area=(1, 1, 39, 24), seed=4).sample(
            30.0, 0.02
        )
        multi = self._multi(trajectory)
        result = simulate_roaming(multi, StrongestApOracle(), seed=5)
        assert len(result.handoffs) >= 1

    def test_handoff_causes_outage(self):
        trajectory = WaypointWalkTrajectory(Point(5, 5), area=(1, 1, 39, 24), seed=6).sample(
            30.0, 0.02
        )
        multi = self._multi(trajectory)
        result = simulate_roaming(multi, StrongestApOracle(), seed=7)
        if result.handoffs:
            event = result.handoffs[0]
            index = int(np.searchsorted(result.times, event.time_s))
            assert result.goodput_mbps[index] == 0.0

    def test_static_client_default_scheme_stable(self):
        trajectory = StaticTrajectory(Point(8, 7)).sample(20.0, 0.02)
        multi = self._multi(trajectory, seed=8)
        result = simulate_roaming(multi, DefaultClientRoaming(), seed=9)
        assert len(result.handoffs) == 0
        assert result.mean_throughput_mbps > 1.0

    def test_controller_beats_stick_on_walks(self):
        """The Fig. 7 headline, reduced to a single long walk."""
        trajectory = WaypointWalkTrajectory(Point(3, 3), area=(1, 1, 39, 24), seed=10).sample(
            60.0, 0.02
        )
        multi = self._multi(trajectory, seed=11, include_h=True)
        stick = simulate_roaming(multi, StickToFirstAp(), seed=12)
        controller = simulate_roaming(multi, ControllerRoaming(), seed=12)
        assert controller.mean_throughput_mbps > stick.mean_throughput_mbps * 0.95

    def test_tcp_throughput_below_udp(self):
        trajectory = WaypointWalkTrajectory(Point(5, 5), area=(1, 1, 39, 24), seed=13).sample(
            20.0, 0.02
        )
        multi = self._multi(trajectory, seed=14)
        result = simulate_roaming(multi, DefaultClientRoaming(), seed=15)
        assert result.tcp_throughput_mbps() <= result.mean_throughput_mbps
