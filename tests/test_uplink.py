"""Tests for the Section-9 uplink extension."""

import pytest

from repro.aggregation.policy import MobilityAwareAggregation
from repro.core.hints import MobilityEstimate
from repro.mac.aggregation import FrameTransmitter
from repro.mobility.modes import Heading, MobilityMode
from repro.rate.atheros import AtherosRateAdaptation
from repro.rate.mobility_aware import MobilityAwareAtherosRA
from repro.testing import synthetic_trace
from repro.wlan.uplink import delay_hints, simulate_uplink


def _hints():
    return [
        MobilityEstimate(1.0, MobilityMode.MICRO),
        MobilityEstimate(5.0, MobilityMode.MACRO, Heading.TOWARDS, tof_window_full=True),
    ]


class TestDelayHints:
    def test_shifts_times(self):
        delayed = delay_hints(_hints(), 0.2)
        assert [h.time_s for h in delayed] == [1.2, 5.2]
        # Content preserved.
        assert delayed[1].heading == Heading.TOWARDS

    def test_originals_untouched(self):
        hints = _hints()
        delay_hints(hints, 1.0)
        assert hints[0].time_s == 1.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            delay_hints(_hints(), -0.1)


class TestSimulateUplink:
    def test_produces_throughput(self):
        trace = synthetic_trace(snr_db=25.0, duration_s=8.0)
        result = simulate_uplink(
            AtherosRateAdaptation(),
            trace,
            transmitter=FrameTransmitter(seed=1),
        )
        assert result.throughput_mbps > 10.0

    def test_mobility_aware_uplink_beats_stock(self):
        """Client-side RA + aggregation with AP hints (the Section-9 point)."""
        trace = synthetic_trace(snr_db=24.0, duration_s=30.0, doppler_hz=23.0)
        hints = [
            MobilityEstimate(
                0.5, MobilityMode.MACRO, Heading.TOWARDS, tof_window_full=True
            )
        ]
        stock = simulate_uplink(
            AtherosRateAdaptation(),
            trace,
            transmitter=FrameTransmitter(seed=2),
        )
        aware = simulate_uplink(
            MobilityAwareAtherosRA(),
            trace,
            aggregation=MobilityAwareAggregation(),
            hints=hints,
            transmitter=FrameTransmitter(seed=2),
        )
        assert aware.throughput_mbps > stock.throughput_mbps

    def test_hint_delay_recorded(self):
        trace = synthetic_trace(duration_s=2.0)
        result = simulate_uplink(
            AtherosRateAdaptation(),
            trace,
            hints=_hints(),
            hint_delay_s=0.123,
            transmitter=FrameTransmitter(seed=3),
        )
        assert result.hint_delay_s == 0.123
