"""Unit tests for A-MPDU aggregation and airtime accounting."""

import numpy as np
import pytest

from repro.mac.aggregation import MAX_MPDUS, FrameTransmitter
from repro.mac.timing import MacTiming
from repro.phy.error import ErrorModel


@pytest.fixture
def transmitter():
    return FrameTransmitter(seed=1)


class TestSizing:
    def test_mpdu_duration_scales_inversely_with_rate(self, transmitter):
        assert transmitter.mpdu_duration_s(0) > transmitter.mpdu_duration_s(7)

    def test_mpdus_fit_aggregation_time(self, transmitter):
        n = transmitter.mpdus_for_aggregation_time(7, 0.004)
        duration = transmitter.mpdu_duration_s(7)
        assert n * duration <= 0.004 + duration
        assert n >= 1

    def test_block_ack_window_cap(self, transmitter):
        # At the top rate, a long aggregation time hits the 64-MPDU cap.
        assert transmitter.mpdus_for_aggregation_time(15, 0.008) == MAX_MPDUS

    def test_at_least_one_mpdu(self, transmitter):
        # Even when one MPDU exceeds the limit (low rate, short time).
        assert transmitter.mpdus_for_aggregation_time(0, 0.0005) == 1

    def test_invalid_aggregation_time(self, transmitter):
        with pytest.raises(ValueError):
            transmitter.mpdus_for_aggregation_time(7, 0.0)


class TestTransmit:
    def test_good_channel_delivers_everything(self, transmitter):
        result = transmitter.transmit(4, 35.0, 0.15, 0.004)
        assert result.block_ack_received
        assert result.n_delivered == result.n_mpdus
        assert result.delivered_bytes == result.n_mpdus * 1500

    def test_terrible_channel_loses_everything(self, transmitter):
        result = transmitter.transmit(7, -10.0, 0.15, 0.004)
        assert result.all_lost
        assert not result.block_ack_received

    def test_airtime_includes_fixed_overheads(self, transmitter):
        result = transmitter.transmit(4, 30.0, 0.15, 0.002)
        burst = result.n_mpdus * transmitter.mpdu_duration_s(4)
        assert result.airtime_s == pytest.approx(MacTiming().frame_overhead_s() + burst)

    def test_queued_mpdus_cap(self, transmitter):
        result = transmitter.transmit(7, 30.0, 0.15, 0.008, queued_mpdus=3)
        assert result.n_mpdus == 3

    def test_mobility_degrades_frame_tail(self, transmitter):
        """The Fig. 10 mechanism: within-frame staleness under mobility."""
        static = transmitter.expected_goodput_mbps(7, 28.0, 0.15, 0.008)
        walking = transmitter.expected_goodput_mbps(7, 28.0, 23.0, 0.008)
        assert walking < static * 0.9

    def test_short_aggregates_resist_mobility(self, transmitter):
        short = transmitter.expected_goodput_mbps(7, 28.0, 23.0, 0.002)
        long = transmitter.expected_goodput_mbps(7, 28.0, 23.0, 0.008)
        assert short > long

    def test_aggregation_crossover_static_vs_macro(self, transmitter):
        """Static prefers 8 ms; walking prefers 2 ms (Fig. 10(a))."""

        def best(doppler, agg_s):
            return max(
                transmitter.expected_goodput_mbps(m, 28.0, doppler, agg_s)
                for m in range(16)
            )

        assert best(0.15, 0.008) >= best(0.15, 0.002)
        assert best(23.0, 0.002) > best(23.0, 0.008)

    def test_instantaneous_per(self, transmitter):
        result = transmitter.transmit(4, 30.0, 0.15, 0.004)
        assert result.instantaneous_per == pytest.approx(
            1.0 - result.n_delivered / result.n_mpdus
        )

    def test_condition_penalty_only_for_two_streams(self, transmitter):
        one_stream = transmitter.expected_goodput_mbps(7, 25.0, 0.15, 0.004, mimo_condition_db=30.0)
        one_stream_good = transmitter.expected_goodput_mbps(7, 25.0, 0.15, 0.004, mimo_condition_db=0.0)
        assert one_stream == pytest.approx(one_stream_good)
        two_stream = transmitter.expected_goodput_mbps(15, 34.0, 0.15, 0.004, mimo_condition_db=30.0)
        two_stream_good = transmitter.expected_goodput_mbps(15, 34.0, 0.15, 0.004, mimo_condition_db=0.0)
        assert two_stream < two_stream_good

    def test_deterministic_with_seed(self):
        a = FrameTransmitter(seed=9).transmit(4, 16.0, 5.0, 0.004)
        b = FrameTransmitter(seed=9).transmit(4, 16.0, 5.0, 0.004)
        assert a.n_delivered == b.n_delivered

    def test_expected_goodput_matches_sampling(self):
        model = ErrorModel()
        transmitter = FrameTransmitter(error_model=model, seed=3)
        expected = transmitter.expected_goodput_mbps(4, 17.0, 0.15, 0.004)
        total_bytes = 0
        total_time = 0.0
        for _ in range(300):
            result = transmitter.transmit(4, 17.0, 0.15, 0.004)
            total_bytes += result.delivered_bytes
            total_time += result.airtime_s
        sampled = total_bytes * 8 / total_time / 1e6
        assert sampled == pytest.approx(expected, rel=0.1)
