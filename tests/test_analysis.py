"""Tests for repro.analysis: the rule goldens, suppression hygiene,
the self-check over the real tree, and the mypy ratchet.

The fixture corpus in ``tests/analysis_fixtures/`` is the executable
specification: each rule has a file of violations annotated with
``# expect: REPxxx`` comments, and these tests fail if the linter
reports anything more or less than the annotations promise.
"""

import io
import json
import re
import subprocess
import sys
import tokenize
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    RULES_BY_CODE,
    SUPPRESSION_CODE,
    WallClockRule,
    check_file,
    check_paths,
    check_source,
    infer_context,
    parse_suppressions,
)
from repro.analysis.engine import SKIP_DIRS, iter_python_files
from repro.analysis.ratchet import (
    STRICT_PACKAGES,
    compare,
    load_baseline,
    package_of,
    parse_mypy_output,
    run_mypy,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"

_EXPECT_RE = re.compile(r"#\s*expect:\s*(REP\d{3}(?:\s*,\s*REP\d{3})*)")


def expected_findings(path: Path):
    """Parse ``# expect: REPxxx`` comments into {(line, code), ...}."""
    expected = set()
    with tokenize.open(path) as fh:
        tokens = tokenize.generate_tokens(io.StringIO(fh.read()).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _EXPECT_RE.search(token.string)
            if match:
                for code in re.split(r"\s*,\s*", match.group(1)):
                    expected.add((token.start[0], code))
    return expected


class TestRuleGoldens:
    """Each rule fires exactly where its fixture says it must."""

    @pytest.mark.parametrize(
        "fixture",
        ["rep001_rng.py", "rep002_wall_clock.py", "rep003_telemetry.py",
         "rep004_swallowed.py", "rep005_units.py"],
    )
    def test_fixture_matches_expectations(self, fixture):
        path = FIXTURES / fixture
        expected = expected_findings(path)
        assert expected, f"{fixture} has no # expect: annotations"
        actual = {
            (diag.line, diag.code)
            for diag in check_file(str(path), context="src")
        }
        assert actual == expected

    @pytest.mark.parametrize("code", sorted(RULES_BY_CODE))
    def test_every_rule_demonstrably_fires(self, code):
        fired = set()
        for fixture in FIXTURES.glob("rep*.py"):
            for diag in check_file(str(fixture), context="src"):
                fired.add(diag.code)
        assert code in fired

    def test_clean_fixture_is_clean(self):
        assert check_file(str(FIXTURES / "clean.py"), context="src") == []


class TestSuppressionHygiene:
    """`# repro: noqa-REPxxx <reason>` semantics, including the failure modes."""

    @pytest.fixture(scope="class")
    def diagnostics(self):
        return check_file(str(FIXTURES / "suppression_cases.py"), context="src")

    def test_justified_suppression_silences(self, diagnostics):
        # Line 11 holds a justified noqa-REP002: no finding at all.
        assert not [d for d in diagnostics if d.line == 11]

    def test_missing_justification_keeps_finding_and_flags_noqa(self, diagnostics):
        codes = sorted(d.code for d in diagnostics if d.line == 15)
        assert codes == [SUPPRESSION_CODE, "REP002"]

    def test_unused_suppression_is_flagged(self, diagnostics):
        codes = [d.code for d in diagnostics if d.line == 19]
        assert codes == [SUPPRESSION_CODE]
        assert "unused suppression" in [d for d in diagnostics if d.line == 19][0].message

    def test_unknown_rule_code_is_flagged(self, diagnostics):
        flagged = [d for d in diagnostics if d.line == 23]
        assert [d.code for d in flagged] == [SUPPRESSION_CODE]
        assert "REP998" in flagged[0].message

    def test_docstring_mention_is_not_a_suppression(self):
        source = '"""Docs may say # repro: noqa-REP002 without suppressing."""\n'
        assert parse_suppressions(source) == []


class TestEngine:
    def test_infer_context(self):
        assert infer_context("src/repro/core/classifier.py") == "src"
        assert infer_context("tests/test_analysis.py") == "tests"
        assert infer_context("benchmarks/test_performance.py") == "benchmarks"
        assert infer_context("examples/telemetry_demo.py") == "examples"
        assert infer_context("somewhere/else.py") == "src"

    def test_syntax_error_reports_not_raises(self):
        diags = check_source("def broken(:\n", "bad.py")
        assert len(diags) == 1 and diags[0].code == SUPPRESSION_CODE

    def test_fixture_corpus_is_never_walked(self):
        assert "analysis_fixtures" in SKIP_DIRS
        walked = list(iter_python_files([str(REPO_ROOT / "tests")]))
        assert not [p for p in walked if "analysis_fixtures" in p]

    def test_select_subset_of_rules(self):
        source = "import time\n\n\ndef f():\n    return time.time()\n"
        only_rep004 = check_source(
            source, "x.py", context="src", rules=[RULES_BY_CODE["REP004"]]
        )
        assert only_rep004 == []
        only_rep002 = check_source(
            source, "x.py", context="src", rules=[RULES_BY_CODE["REP002"]]
        )
        assert [d.code for d in only_rep002] == ["REP002"]


class TestProjectSelfCheck:
    """The linter's whole point: the real tree holds its own invariants."""

    def test_project_tree_is_clean(self):
        trees = [str(REPO_ROOT / t) for t in ("src", "tests", "benchmarks", "examples")]
        diagnostics = check_paths(trees)
        assert diagnostics == [], "\n" + "\n".join(d.render() for d in diagnostics)

    def test_experiment_runner_is_simtime_only(self):
        """The experiment CLI never reads the wall clock inside a run.

        PR 4's supervisor made retry backoff sim-time; this pins the last
        wall-clock read out of ``repro.experiments`` for good.  The two
        perf_counter reads in ``__main__.py`` wrap the run (operator
        elapsed report) and carry written justifications — anything else
        is a violation.
        """
        diagnostics = check_paths(
            [str(REPO_ROOT / "src" / "repro" / "experiments")], context="src"
        )
        wall_clock = [d for d in diagnostics if d.code == "REP002"]
        assert wall_clock == [], "\n".join(d.render() for d in wall_clock)

    def test_cli_exits_zero_on_project(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis",
             "src", "tests", "benchmarks", "examples"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "all invariants hold" in result.stdout

    def test_cli_reports_violations_with_locations(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\n\ndef f():\n    return time.time()\n")
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--context", "src", str(bad)],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert re.search(r"bad\.py:5:\d+: REP002", result.stdout)


class TestRatchet:
    def test_package_of(self):
        assert package_of("src/repro/channel/model.py") == "repro.channel"
        assert package_of("src/repro/testing.py") == "repro"
        assert package_of("src/repro/util/rng.py") == "repro.util"
        assert package_of("scripts/tool.py") == "<external>"

    def test_parse_mypy_output(self):
        output = (
            "src/repro/channel/model.py:10: error: Incompatible types\n"
            "src/repro/channel/kernels.py:5:12: error: Missing return\n"
            "src/repro/util/rng.py:3: note: See docs\n"
            "Found 2 errors in 2 files (checked 10 source files)\n"
        )
        assert parse_mypy_output(output) == {"repro.channel": 2}

    def test_compare_regression(self):
        regressions, stale, strict = compare({"repro.wlan": 3}, {"repro.wlan": 1})
        assert len(regressions) == 1 and not stale and not strict

    def test_compare_stale_baseline(self):
        regressions, stale, strict = compare({"repro.wlan": 0}, {"repro.wlan": 2})
        assert not regressions and len(stale) == 1 and not strict
        assert "--update" in stale[0]

    def test_compare_strict_violation(self):
        _, _, strict = compare({"repro.core": 1}, {})
        assert len(strict) == 1 and "repro.core" in strict[0]
        _, _, strict = compare({}, {"repro.util": 5})
        assert len(strict) == 1 and "zero baseline" in strict[0]

    def test_compare_clean(self):
        assert compare({"repro.wlan": 1}, {"repro.wlan": 1}) == ([], [], [])

    def test_baseline_file_strict_packages_are_zero(self):
        baseline = load_baseline(str(REPO_ROOT / "mypy_baseline.json"))
        for package in STRICT_PACKAGES:
            assert baseline.get(package, 0) == 0
        with open(REPO_ROOT / "mypy_baseline.json", encoding="utf-8") as fh:
            assert json.load(fh)["strict"] == list(STRICT_PACKAGES)

    def test_ratchet_gate_against_real_tree(self):
        """The CI gate, run locally when mypy is available."""
        try:
            actual, raw = run_mypy([str(REPO_ROOT / "src" / "repro")])
        except RuntimeError as exc:
            pytest.skip(str(exc))
        baseline = load_baseline(str(REPO_ROOT / "mypy_baseline.json"))
        regressions, stale, strict = compare(actual, baseline)
        assert not regressions and not stale and not strict, raw


class TestRuleMetadata:
    def test_catalog_is_complete_and_documented(self):
        assert [rule.code for rule in ALL_RULES] == [
            "REP001", "REP002", "REP003", "REP004", "REP005",
        ]
        for rule in ALL_RULES:
            assert rule.title and rule.rationale
            assert rule.contexts

    def test_wall_clock_rule_spares_tests(self):
        assert "tests" not in WallClockRule.contexts
        assert "src" in WallClockRule.contexts

    def test_rules_documented_in_static_analysis_md(self):
        doc = (REPO_ROOT / "docs" / "static-analysis.md").read_text(encoding="utf-8")
        for rule in ALL_RULES:
            assert rule.code in doc
        assert SUPPRESSION_CODE in doc
