"""Unit and integration tests for ``repro.controller``."""

import numpy as np
import pytest

from repro.controller import (
    Controller,
    ControllerConfig,
    ControllerSession,
    GoodputTable,
    HysteresisPolicy,
    LinkStatsBook,
    MatrixWindow,
    MobilityHintPolicy,
    PolicyInputs,
    StrongestApPolicy,
    ap_load,
    attainable_throughput_mbps,
)
from repro.controller.session import ApFailureEvent
from repro.core.hints import MobilityEstimate
from repro.experiments import ext_controller
from repro.mobility.modes import Heading, MobilityMode
from repro.phy.error import ErrorModel
from repro.roaming.schemes import ControllerRoaming
from repro.sim import SimulationEngine, TimeGrid
from repro.telemetry import TelemetryRecorder
from repro.wlan.floorplan import grid_floorplan

from tests.test_roaming import FakeContext  # scriptable RoamingContext


# ---------------------------------------------------------------- stats


class TestMatrixWindow:
    def test_mean_and_slope_match_numpy(self):
        rng = np.random.default_rng(1)
        window = MatrixWindow(3, 2, window=5)
        slabs = rng.normal(-60.0, 5.0, (5, 3, 2))
        for slab in slabs:
            window.push(slab)
        assert window.full
        np.testing.assert_allclose(window.mean(), slabs.mean(axis=0))
        x = np.arange(5.0)
        expected = np.empty((3, 2))
        for i in range(3):
            for j in range(2):
                expected[i, j] = np.polyfit(x, slabs[:, i, j], 1)[0]
        np.testing.assert_allclose(window.slope(), expected)

    def test_ring_overwrites_oldest(self):
        window = MatrixWindow(1, 1, window=2)
        for value in (1.0, 2.0, 3.0):
            window.push(np.array([[value]]))
        assert window.count == 2
        np.testing.assert_allclose(window.mean(), [[2.5]])
        np.testing.assert_allclose(window.latest(), [[3.0]])

    def test_slope_zero_until_two_samples(self):
        window = MatrixWindow(2, 2, window=4)
        window.push(np.zeros((2, 2)))
        np.testing.assert_array_equal(window.slope(), np.zeros((2, 2)))

    def test_empty_window_raises(self):
        window = MatrixWindow(1, 1, window=2)
        with pytest.raises(ValueError, match="empty"):
            window.mean()

    def test_shape_mismatch_raises(self):
        window = MatrixWindow(2, 3, window=2)
        with pytest.raises(ValueError, match="expected shape"):
            window.push(np.zeros((3, 2)))

    def test_window_of_one_rejected(self):
        with pytest.raises(ValueError, match="window"):
            MatrixWindow(1, 1, window=1)

    def test_stats_book_defaults_pdr_to_one(self):
        book = LinkStatsBook(2, 2, window=3)
        book.push(np.full((2, 2), -60.0))
        np.testing.assert_array_equal(book.pdr.latest(), np.ones((2, 2)))
        assert book.n_pushes == 1


# -------------------------------------------------------------- aquamet


class TestAquamet:
    def test_table_matches_error_model_at_grid_points(self):
        model = ErrorModel()
        table = GoodputTable(error_model=model)
        for snr in (0.0, 10.0, 25.0, 40.0):
            expected = model.expected_goodput_mbps(snr)
            assert table.goodput_mbps(np.array([snr]))[0] == pytest.approx(expected)

    def test_lookup_clamps_to_range(self):
        table = GoodputTable()
        lo, hi = table.goodput_mbps(np.array([-100.0, 100.0]))
        assert lo == table.goodput_grid_mbps[0]
        assert hi == table.goodput_grid_mbps[-1]

    def test_ap_load_ignores_unassociated(self):
        load = ap_load(np.array([0, 0, 1, -1]), 3)
        np.testing.assert_array_equal(load, [2.0, 1.0, 0.0])

    def test_attainable_divides_by_load(self):
        goodput = np.array([[100.0, 100.0]])
        pdr = np.array([[1.0, 0.5]])
        load = np.array([[4.0, 0.0]])
        np.testing.assert_allclose(
            attainable_throughput_mbps(goodput, pdr, load), [[25.0, 50.0]]
        )


# -------------------------------------------------------------- policies


def make_inputs(
    rssi,
    serving,
    now_s=100.0,
    slope=None,
    alive=None,
    last_handover_s=None,
    macro=None,
    away=None,
    provisional=None,
):
    rssi = np.asarray(rssi, dtype=float)
    n, a = rssi.shape
    return PolicyInputs(
        now_s=now_s,
        serving=np.asarray(serving, dtype=int),
        rssi_dbm=rssi,
        rssi_slope_db=np.zeros((n, a)) if slope is None else np.asarray(slope, float),
        attainable_mbps=np.zeros((n, a)),
        alive=np.ones(a, dtype=bool) if alive is None else np.asarray(alive, bool),
        last_handover_s=(
            np.full(n, -np.inf) if last_handover_s is None
            else np.asarray(last_handover_s, float)
        ),
        window_full=True,
        hint_macro=np.zeros(n, bool) if macro is None else np.asarray(macro, bool),
        hint_away=np.zeros(n, bool) if away is None else np.asarray(away, bool),
        hint_provisional=(
            np.zeros(n, bool) if provisional is None
            else np.asarray(provisional, bool)
        ),
    )


class TestStrongestApPolicy:
    def test_always_picks_argmax(self):
        inputs = make_inputs([[-70.0, -60.0], [-50.0, -65.0]], [0, 0])
        decision = StrongestApPolicy().decide(inputs)
        np.testing.assert_array_equal(decision.targets, [1, 0])

    def test_dead_ap_never_target(self):
        inputs = make_inputs([[-70.0, -60.0]], [0], alive=[True, False])
        decision = StrongestApPolicy().decide(inputs)
        np.testing.assert_array_equal(decision.targets, [0])


class TestHysteresisPolicy:
    def test_small_gain_suppressed(self):
        inputs = make_inputs([[-62.0, -60.0]], [0])
        decision = HysteresisPolicy(margin_db=3.0).decide(inputs)
        np.testing.assert_array_equal(decision.targets, [0])
        assert decision.n_suppressed == 1

    def test_clear_gain_roams(self):
        inputs = make_inputs([[-70.0, -60.0]], [0])
        decision = HysteresisPolicy(margin_db=3.0).decide(inputs)
        np.testing.assert_array_equal(decision.targets, [1])
        assert decision.n_suppressed == 0

    def test_cooldown_suppresses(self):
        inputs = make_inputs(
            [[-70.0, -60.0]], [0], now_s=10.0, last_handover_s=[8.0]
        )
        decision = HysteresisPolicy(margin_db=3.0, cooldown_s=4.0).decide(inputs)
        np.testing.assert_array_equal(decision.targets, [0])
        assert decision.n_suppressed == 1

    def test_dead_serving_ap_always_evacuated(self):
        inputs = make_inputs(
            [[-50.0, -80.0]],
            [0],
            alive=[False, True],
            now_s=10.0,
            last_handover_s=[9.5],  # cooldown would normally block
        )
        decision = HysteresisPolicy().decide(inputs)
        np.testing.assert_array_equal(decision.targets, [1])


class TestMobilityHintPolicy:
    def test_macro_noise_roam_pinned(self):
        # 5 dB gain: hysteresis would roam, a settled MACRO client stays.
        inputs = make_inputs([[-65.0, -60.0]], [0], macro=[True])
        decision = MobilityHintPolicy(pin_margin_db=8.0).decide(inputs)
        np.testing.assert_array_equal(decision.targets, [0])
        assert decision.n_suppressed == 1

    def test_macro_decisive_roam_allowed(self):
        inputs = make_inputs([[-72.0, -60.0]], [0], macro=[True])
        decision = MobilityHintPolicy(pin_margin_db=8.0).decide(inputs)
        np.testing.assert_array_equal(decision.targets, [1])

    def test_rescue_floor_unpins(self):
        inputs = make_inputs([[-80.0, -76.0]], [0], macro=[True])
        decision = MobilityHintPolicy(
            pin_margin_db=30.0, rescue_floor_dbm=-78.0
        ).decide(inputs)
        np.testing.assert_array_equal(decision.targets, [1])

    def test_settled_away_preempts_to_approaching_ap(self):
        inputs = make_inputs(
            [[-60.0, -59.0, -58.0]],
            [0],
            slope=[[-1.0, 2.0, -0.5]],  # only AP1 is being approached
            macro=[True],
            away=[True],
        )
        decision = MobilityHintPolicy().decide(inputs)
        np.testing.assert_array_equal(decision.targets, [1])

    def test_provisional_away_does_not_preempt(self):
        """Satellite regression: a tof_window_full=False MACRO/AWAY hint —
        mobility onset, or the safe default after a sensing quarantine —
        must not trigger the pre-emptive roam."""
        inputs = make_inputs(
            [[-60.0, -59.0]],
            [0],
            slope=[[-1.0, 2.0]],
            macro=[True],
            away=[True],
            provisional=[True],
        )
        decision = MobilityHintPolicy().decide(inputs)
        np.testing.assert_array_equal(decision.targets, [0])
        assert decision.n_suppressed >= 1

    def test_away_without_candidate_falls_back_to_hysteresis(self):
        inputs = make_inputs(
            [[-60.0, -59.0]],
            [0],
            slope=[[-1.0, -1.0]],  # approaching nothing
            macro=[True],
            away=[True],
        )
        decision = MobilityHintPolicy().decide(inputs)
        np.testing.assert_array_equal(decision.targets, [0])

    def test_pin_margin_must_cover_margin(self):
        with pytest.raises(ValueError, match="pin_margin_db"):
            MobilityHintPolicy(margin_db=5.0, pin_margin_db=3.0)


# ------------------------------------------------------------ controller


def feed(controller, rssi, epochs, dt_s=1.0):
    """Observe ``rssi`` and run an epoch ``epochs`` times; return reports."""
    return [
        (
            controller.observe(float(k) * dt_s, rssi),
            controller.run_epoch(float(k) * dt_s),
        )[1]
        for k in range(epochs)
    ]


class TestController:
    def test_first_observe_auto_associates_strongest(self):
        controller = Controller(2, 2, StrongestApPolicy())
        controller.observe(0.0, np.array([[-70.0, -60.0], [-55.0, -80.0]]))
        np.testing.assert_array_equal(controller.association, [1, 0])
        assert controller.totals["handovers"] == 0

    def test_handover_and_pingpong_counting(self):
        controller = Controller(
            1, 2, StrongestApPolicy(), config=ControllerConfig(pingpong_window_s=10.0)
        )
        controller.observe(0.0, np.array([[-60.0, -70.0]]))
        controller.run_epoch(0.0)  # stays on AP0
        controller.observe(1.0, np.array([[-75.0, -60.0]]))
        controller.run_epoch(1.0)  # roam to AP1
        controller.observe(2.0, np.array([[-60.0, -75.0]]))
        controller.run_epoch(2.0)  # straight back: ping-pong
        assert controller.totals["handovers"] == 2
        assert controller.totals["pingpong"] == 1

    def test_epoch_before_observe_raises(self):
        controller = Controller(1, 2, StrongestApPolicy())
        with pytest.raises(ValueError, match="observe"):
            controller.run_epoch(0.0)

    def test_update_hint_by_label_and_index(self):
        controller = Controller(2, 2, MobilityHintPolicy())
        away = MobilityEstimate(
            0.0, MobilityMode.MACRO, Heading.AWAY, tof_window_full=True
        )
        controller.update_hint("client-1", away)
        controller.update_hint(0, away)
        controller.update_hint(0, MobilityEstimate(1.0, MobilityMode.STATIC))
        controller.observe(2.0, np.full((2, 2), -60.0))
        snapshot = controller.policy_inputs(2.0)
        np.testing.assert_array_equal(snapshot.hint_macro, [False, True])
        np.testing.assert_array_equal(snapshot.hint_provisional, [True, False])

    def test_mark_ap_down_quarantines_and_evacuates(self):
        controller = Controller(3, 2, HysteresisPolicy())
        rssi = np.array([[-55.0, -70.0], [-56.0, -71.0], [-80.0, -57.0]])
        controller.observe(0.0, rssi)
        controller.run_epoch(0.0)
        np.testing.assert_array_equal(controller.association, [0, 0, 1])
        moved = controller.mark_ap_down(1.0, 0, reason="power cut")
        assert moved == 2
        np.testing.assert_array_equal(controller.association, [1, 1, 1])
        record = controller.ap_failures["ap-0"]
        assert record.exception_type == "ApFailure"
        assert record.message == "power cut"
        assert controller.totals["reassociations"] == 2
        # Idempotent: a second report of the same AP is a no-op.
        assert controller.mark_ap_down(2.0, 0) == 0

    def test_dead_ap_excluded_from_future_epochs(self):
        controller = Controller(1, 2, StrongestApPolicy())
        controller.observe(0.0, np.array([[-55.0, -60.0]]))
        controller.run_epoch(0.0)
        controller.mark_ap_down(0.5, 0)
        controller.observe(1.0, np.array([[-40.0, -60.0]]))  # dead AP looks great
        controller.run_epoch(1.0)
        np.testing.assert_array_equal(controller.association, [1])

    def test_telemetry_counters_and_events(self):
        recorder = TelemetryRecorder()
        controller = Controller(1, 2, StrongestApPolicy(), recorder=recorder)
        controller.observe(0.0, np.array([[-60.0, -70.0]]))
        controller.run_epoch(0.0)
        controller.observe(1.0, np.array([[-75.0, -60.0]]))
        controller.run_epoch(1.0)
        controller.mark_ap_down(2.0, 1)
        metrics = recorder.metrics
        assert metrics.counter("controller.handovers").value == 1.0
        assert metrics.counter("controller.ap_down").value == 1.0
        assert metrics.counter("controller.reassociations").value == 1.0
        assert metrics.gauge("controller.aps_alive").value == 1.0
        kinds = {event.kind for event in recorder.tracer.events}
        assert {"controller_epoch", "controller_handover", "controller_ap_down"} <= kinds

    def test_latency_zero_without_live_recorder(self):
        controller = Controller(1, 2, StrongestApPolicy())
        controller.observe(0.0, np.array([[-60.0, -70.0]]))
        report = controller.run_epoch(0.0)
        assert report.latency_s == 0.0


class TestControllerSession:
    def _rssi(self, n_steps, n_clients=2, n_aps=2):
        rng = np.random.default_rng(3)
        return rng.normal(-60.0, 3.0, (n_steps, n_clients, n_aps))

    def test_runs_on_engine_and_returns_result(self):
        controller = Controller(2, 2, HysteresisPolicy())
        session = ControllerSession(controller, self._rssi(8), epoch_every=2)
        engine = SimulationEngine(TimeGrid(np.arange(8) * 0.5))
        engine.add(session)
        result = engine.run()["controller"]
        assert result.policy == "hysteresis"
        assert result.association_timeline.shape == (4, 2)
        assert len(result.epoch_times) == 4

    def test_grid_mismatch_raises(self):
        controller = Controller(2, 2, HysteresisPolicy())
        session = ControllerSession(controller, self._rssi(8))
        engine = SimulationEngine(TimeGrid(np.arange(9) * 0.5))
        engine.add(session)
        with pytest.raises(Exception, match="grid"):
            engine.run()

    def test_scheduled_ap_failure_fires_once(self):
        controller = Controller(2, 2, HysteresisPolicy())
        session = ControllerSession(
            controller,
            self._rssi(8),
            ap_failures=[ApFailureEvent(ap=0, at_s=1.0, reason="boom")],
        )
        engine = SimulationEngine(TimeGrid(np.arange(8) * 0.5))
        engine.add(session)
        result = engine.run()["controller"]
        assert set(result.failures) == {"ap-0"}
        assert result.failures["ap-0"].message == "boom"
        assert not np.any(result.association_timeline[2:] == 0)

    def test_bad_shape_rejected(self):
        controller = Controller(2, 2, HysteresisPolicy())
        with pytest.raises(ValueError, match="rssi_by_step"):
            ControllerSession(controller, np.zeros((8, 3, 2)))


# ---------------------------------------------------- storm integration


class TestRoamingStorm:
    @pytest.fixture(scope="class")
    def storm(self):
        return ext_controller.build_storm(
            24, floorplan=grid_floorplan(), duration_s=20.0, seed=5
        )

    def test_storm_is_deterministic(self, storm):
        again = ext_controller.build_storm(
            24, floorplan=grid_floorplan(), duration_s=20.0, seed=5
        )
        np.testing.assert_array_equal(storm.rssi_by_step, again.rssi_by_step)
        for a, b in zip(storm.tof_readings, again.tof_readings):
            np.testing.assert_array_equal(a, b)

    def test_policies_run_over_identical_inputs(self, storm):
        results = ext_controller.compare_policies(storm)
        assert set(results) == {"strongest", "hysteresis", "mobility-hint"}
        strongest = results["strongest"]
        hinted = results["mobility-hint"]
        assert strongest.totals["suppressed"] == 0
        assert hinted.totals["handovers"] <= strongest.totals["handovers"]
        assert hinted.totals["pingpong"] <= strongest.totals["pingpong"]
        assert hinted.totals["suppressed"] > 0

    def test_report_formats(self, storm):
        results = ext_controller.compare_policies(storm)
        report = ext_controller.StormReport(
            n_clients=storm.n_clients,
            n_aps=storm.n_aps,
            duration_s=storm.duration_s,
            results=results,
        )
        text = report.format_report()
        assert "mobility-hint" in text and "strongest" in text


# ------------------------------------------- ControllerRoaming adapter


class TestControllerRoamingAdapter:
    def test_settled_away_hint_forces_roam(self):
        ctx = FakeContext(
            rssi={0: -70.0, 1: -65.0},
            estimate=MobilityEstimate(
                0.0, MobilityMode.MACRO, Heading.AWAY, tof_window_full=True
            ),
            headings={0: Heading.AWAY, 1: Heading.TOWARDS},
        )
        decision = ControllerRoaming().decide(ctx)
        assert decision.target_ap == 1
        assert decision.forced

    def test_provisional_away_hint_never_forces_roam(self):
        """Satellite regression: at mobility onset the trend window has not
        filled, so the MACRO/AWAY estimate is provisional — the adapter
        must fall through to default behaviour instead of pre-empting
        (the forced roam + immediate strongest-AP correction used to
        ping-pong the client)."""
        ctx = FakeContext(
            rssi={0: -60.0, 1: -55.0},
            estimate=MobilityEstimate(
                0.0, MobilityMode.MACRO, Heading.AWAY, tof_window_full=False
            ),
            headings={0: Heading.AWAY, 1: Heading.TOWARDS},
        )
        decision = ControllerRoaming().decide(ctx)
        assert not decision.forced
        assert ctx.scan_count == 0  # signal is fine: fallback does nothing

    def test_shares_policy_candidate_rule(self):
        scheme = ControllerRoaming(candidate_margin_db=2.0)
        assert isinstance(scheme.policy, MobilityHintPolicy)
        assert scheme.policy.preempt_margin_db == 2.0
        ctx = FakeContext(
            rssi={0: -60.0, 1: -59.0},  # 1 dB better: below the margin
            estimate=MobilityEstimate(
                0.0, MobilityMode.MACRO, Heading.AWAY, tof_window_full=True
            ),
            headings={0: Heading.AWAY, 1: Heading.TOWARDS},
        )
        assert not scheme.decide(ctx).forced

    def test_reset_clears_cooldown(self):
        scheme = ControllerRoaming(roam_cooldown_s=5.0)
        ctx = FakeContext(
            rssi={0: -70.0, 1: -65.0},
            estimate=MobilityEstimate(
                0.0, MobilityMode.MACRO, Heading.AWAY, tof_window_full=True
            ),
            headings={0: Heading.AWAY, 1: Heading.TOWARDS},
        )
        assert scheme.decide(ctx).forced
        assert not scheme.decide(ctx).forced  # cooldown
        scheme.reset()
        assert scheme.decide(ctx).forced
