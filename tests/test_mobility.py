"""Unit tests for mobility modes, trajectories, environments, scenarios."""

import numpy as np
import pytest

from repro.mobility.environment import EnvironmentActivity, EnvironmentProcess
from repro.mobility.modes import MODE_ORDER, GroundTruth, Heading, MobilityMode
from repro.mobility.scenarios import (
    circular_scenario,
    environmental_scenario,
    macro_scenario,
    micro_scenario,
    static_scenario,
)
from repro.mobility.trajectory import (
    ApproachRetreatTrajectory,
    CircularTrajectory,
    MicroJitterTrajectory,
    StaticTrajectory,
    WaypointWalkTrajectory,
    concatenate_traces,
)
from repro.util.geometry import Point

AP = Point(0.0, 0.0)
CLIENT = Point(10.0, 5.0)


class TestModes:
    def test_device_mobility_flag(self):
        assert MobilityMode.MICRO.is_device_mobility
        assert MobilityMode.MACRO.is_device_mobility
        assert not MobilityMode.STATIC.is_device_mobility
        assert not MobilityMode.ENVIRONMENTAL.is_device_mobility

    def test_heading_only_for_macro(self):
        with pytest.raises(ValueError):
            GroundTruth(MobilityMode.MICRO, Heading.AWAY)

    def test_matches_mode_only(self):
        gt = GroundTruth(MobilityMode.STATIC)
        assert gt.matches(MobilityMode.STATIC)
        assert not gt.matches(MobilityMode.MICRO)

    def test_matches_macro_heading(self):
        gt = GroundTruth(MobilityMode.MACRO, Heading.AWAY)
        assert gt.matches(MobilityMode.MACRO, Heading.AWAY)
        assert not gt.matches(MobilityMode.MACRO, Heading.TOWARDS)

    def test_indeterminate_heading_accepts_any(self):
        gt = GroundTruth(MobilityMode.MACRO, Heading.NONE)
        assert gt.matches(MobilityMode.MACRO, Heading.TOWARDS)
        assert gt.matches(MobilityMode.MACRO, Heading.AWAY)

    def test_mode_order_covers_all(self):
        assert set(MODE_ORDER) == set(MobilityMode)


class TestStaticTrajectory:
    def test_never_moves(self):
        trace = StaticTrajectory(CLIENT).sample(5.0, 0.1)
        assert trace.total_displacement() == 0.0
        assert np.all(trace.speeds() == 0.0)

    def test_grid_shape(self):
        trace = StaticTrajectory(CLIENT).sample(2.0, 0.5)
        assert len(trace) == 4
        assert trace.dt == pytest.approx(0.5)


class TestMicroJitter:
    def test_confined(self):
        trajectory = MicroJitterTrajectory(CLIENT, radius=0.5, seed=1)
        trace = trajectory.sample(60.0, 0.02)
        assert np.all(trace.distances_to(CLIENT) <= 0.5 + 1e-9)

    def test_actually_moves(self):
        trace = MicroJitterTrajectory(CLIENT, seed=2).sample(30.0, 0.02)
        assert np.max(trace.speeds()) > 0.1

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            MicroJitterTrajectory(CLIENT, radius=0.0)


class TestWaypointWalk:
    def test_stays_in_area(self):
        area = (0.0, 0.0, 20.0, 15.0)
        trace = WaypointWalkTrajectory(Point(5, 5), area=area, seed=3).sample(60.0, 0.05)
        assert np.all(trace.positions[:, 0] >= area[0] - 1e-6)
        assert np.all(trace.positions[:, 0] <= area[2] + 1e-6)
        assert np.all(trace.positions[:, 1] >= area[1] - 1e-6)
        assert np.all(trace.positions[:, 1] <= area[3] + 1e-6)

    def test_walking_speed_plausible(self):
        trace = WaypointWalkTrajectory(Point(5, 5), seed=4).sample(30.0, 0.05)
        moving = trace.speeds()[trace.speeds() > 0.1]
        assert 0.5 < np.median(moving) < 2.5

    def test_covers_distance(self):
        trace = WaypointWalkTrajectory(Point(5, 5), seed=5).sample(30.0, 0.05)
        steps = np.hypot(np.diff(trace.positions[:, 0]), np.diff(trace.positions[:, 1]))
        assert np.sum(steps) > 15.0  # walked a substantial path

    def test_invalid_segment_bounds(self):
        with pytest.raises(ValueError):
            WaypointWalkTrajectory(Point(0, 0), min_segment_m=5.0, max_segment_m=2.0)


class TestApproachRetreat:
    def test_respects_distance_bounds(self):
        trajectory = ApproachRetreatTrajectory(
            AP, Point(20.0, 0.0), min_distance_m=3.0, max_distance_m=30.0, seed=6
        )
        trace = trajectory.sample(120.0, 0.05)
        distances = trace.distances_to(AP)
        assert np.min(distances) > 1.5  # bounce near the minimum
        assert np.max(distances) < 33.0

    def test_alternates_direction(self):
        trajectory = ApproachRetreatTrajectory(AP, Point(20.0, 0.0), leg_duration_s=5.0, seed=7)
        trace = trajectory.sample(30.0, 0.05)
        distances = trace.distances_to(AP)
        trend = np.sign(np.diff(distances))
        # Both approaching and retreating segments must exist.
        assert np.any(trend > 0) and np.any(trend < 0)


class TestCircular:
    def test_constant_radius(self):
        trace = CircularTrajectory(AP, radius=8.0).sample(30.0, 0.05)
        distances = trace.distances_to(AP)
        assert np.allclose(distances, 8.0, atol=1e-6)

    def test_moves_at_configured_speed(self):
        trace = CircularTrajectory(AP, radius=8.0, speed=1.2).sample(10.0, 0.01)
        assert np.median(trace.speeds()) == pytest.approx(1.2, rel=0.05)


class TestConcatenate:
    def test_concatenation_preserves_dt_and_length(self):
        a = StaticTrajectory(CLIENT).sample(2.0, 0.1)
        b = MicroJitterTrajectory(CLIENT, seed=8).sample(3.0, 0.1)
        joined = concatenate_traces([a, b])
        assert len(joined) == len(a) + len(b)
        assert joined.dt == pytest.approx(0.1)
        assert np.all(np.diff(joined.times) > 0)

    def test_mismatched_dt_rejected(self):
        a = StaticTrajectory(CLIENT).sample(2.0, 0.1)
        b = StaticTrajectory(CLIENT).sample(2.0, 0.2)
        with pytest.raises(ValueError):
            concatenate_traces([a, b])


class TestEnvironment:
    def test_quiet_levels(self):
        none = EnvironmentProcess.from_activity(EnvironmentActivity.NONE)
        assert none.is_quiet
        strong = EnvironmentProcess.from_activity(EnvironmentActivity.STRONG)
        assert not strong.is_quiet

    def test_strong_more_intense_than_weak(self):
        weak = EnvironmentProcess.from_activity(EnvironmentActivity.WEAK)
        strong = EnvironmentProcess.from_activity(EnvironmentActivity.STRONG)
        assert strong.affected_path_fraction >= weak.affected_path_fraction
        assert strong.scatterer_speed > weak.scatterer_speed

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            EnvironmentProcess(EnvironmentActivity.WEAK, 1.5, 1.0, 0.3)


class TestScenarios:
    def test_static_scenario_labels(self):
        scenario = static_scenario(CLIENT)
        trace = scenario.sample(5.0, 0.1)
        truths = scenario.ground_truth(trace, AP)
        assert all(t.mode == MobilityMode.STATIC for t in truths)

    def test_environmental_scenario_requires_activity(self):
        with pytest.raises(ValueError):
            environmental_scenario(CLIENT, EnvironmentActivity.NONE)

    def test_macro_labels_include_both_headings(self):
        scenario = macro_scenario(CLIENT, anchor=AP, approach_retreat=True, seed=9)
        trace = scenario.sample(60.0, 0.05)
        truths = scenario.ground_truth(trace, AP)
        headings = {t.heading for t in truths}
        assert Heading.TOWARDS in headings
        assert Heading.AWAY in headings

    def test_macro_requires_anchor_for_approach_retreat(self):
        with pytest.raises(ValueError):
            macro_scenario(CLIENT, approach_retreat=True)

    def test_circular_scenario_is_macro_ground_truth(self):
        scenario = circular_scenario(AP, radius=8.0)
        assert scenario.mode == MobilityMode.MACRO
        trace = scenario.sample(10.0, 0.05)
        # Tangential motion: distance to the AP never really changes, so
        # heading labels stay NONE.
        truths = scenario.ground_truth(trace, AP)
        assert all(t.heading == Heading.NONE for t in truths)

    def test_micro_scenario_mode(self):
        assert micro_scenario(CLIENT, seed=1).mode == MobilityMode.MICRO
