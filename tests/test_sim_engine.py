"""Unit tests for the unified simulation engine (``repro.sim``)."""

import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig
from repro.sim import (
    PHASES,
    SensingSession,
    Session,
    SessionError,
    SimulationEngine,
    StepClock,
    TimeGrid,
)


class RecordingSession(Session):
    """Appends (client, phase, step index) to a shared journal."""

    def __init__(self, client, journal):
        self.client = client
        self.journal = journal

    def _record(self, phase, clock):
        self.journal.append((self.client, phase, clock.index))

    def sense(self, clock):
        self._record("sense", clock)

    def classify(self, clock):
        self._record("classify", clock)

    def adapt(self, clock):
        self._record("adapt", clock)

    def transmit(self, clock):
        self._record("transmit", clock)

    def finish(self):
        return self.client


class TestPhaseOrdering:
    def test_phase_major_across_sessions(self):
        """Per step, every session runs a phase before any session moves on."""
        journal = []
        engine = SimulationEngine(TimeGrid(np.array([0.0, 0.1])))
        engine.add(RecordingSession("a", journal))
        engine.add(RecordingSession("b", journal))
        results = engine.run()

        expected = [
            (client, phase, index)
            for index in (0, 1)
            for phase in PHASES
            for client in ("a", "b")
        ]
        assert journal == expected
        assert results == {"a": "a", "b": "b"}

    def test_phases_are_the_papers_pipeline(self):
        assert PHASES == ("sense", "classify", "adapt", "transmit")


class TestTimeGrid:
    def test_clock_windows_tile_the_grid(self):
        grid = TimeGrid(np.arange(0.0, 1.0, 0.1))
        clocks = [grid.clock(i) for i in range(len(grid))]
        for earlier, later in zip(clocks, clocks[1:]):
            assert later.start_s == pytest.approx(earlier.end_s)
        assert clocks[0].dt_s == pytest.approx(0.1)

    def test_stride_matches_csi_sampling_period(self):
        """The default CSI cadence maps exactly onto the 100 ms channel grid."""
        config = ClassifierConfig()
        grid = TimeGrid(np.arange(0.0, 10.0, 0.1))
        stride = grid.stride_for(config.csi_sampling_period_s)
        assert stride == round(config.csi_sampling_period_s / 0.1)
        assert stride * grid.dt_s == pytest.approx(config.csi_sampling_period_s)

    def test_strict_stride_rejects_misaligned_period(self):
        grid = TimeGrid(np.arange(0.0, 10.0, 0.1))
        with pytest.raises(ValueError, match="not aligned"):
            grid.stride_for(0.13)

    def test_lenient_stride_rounds(self):
        grid = TimeGrid(np.arange(0.0, 10.0, 0.1))
        assert grid.stride_for(0.13, strict=False) == 1
        assert grid.stride_for(0.26, strict=False) == 3

    def test_rejects_non_uniform_grid(self):
        with pytest.raises(ValueError, match="uniform"):
            TimeGrid(np.array([0.0, 0.1, 0.3]))

    def test_rejects_decreasing_grid(self):
        with pytest.raises(ValueError, match="increasing"):
            TimeGrid(np.array([0.3, 0.2, 0.1]))

    def test_index_at_clamps(self):
        grid = TimeGrid(np.arange(0.0, 1.0, 0.1))
        assert grid.index_at(-5.0) == 0
        assert grid.index_at(0.55) == 5
        assert grid.index_at(99.0) == len(grid) - 1

    def test_accepts_epoch_anchored_grid(self):
        """Regression: spacing tolerance must scale with the magnitude.

        A replayed capture clock anchored at a Unix epoch puts ~1.7e9 on
        the grid; float64 step jitter there is ~2.4e-7 s — far past the
        old absolute 1e-9 tolerance, which spuriously rejected the grid.
        """
        anchor = 1.7e9  # a 2023 Unix timestamp, as a CSI capture would carry
        times = anchor + np.arange(0.0, 600.0, 0.001)
        assert np.abs(np.diff(times) - 0.001).max() > 1e-9  # trips the old check
        grid = TimeGrid(times)
        assert len(grid) == len(times)
        # dt inferred from a first diff at a 1.7e9 anchor carries the
        # anchor's representation error (~1e-7 absolute).
        assert grid.dt_s == pytest.approx(0.001, rel=1e-3)
        # A caller who knows the exact cadence can pin it.
        assert TimeGrid(times, dt_s=0.001).dt_s == 0.001

    def test_accepts_hours_long_millisecond_grid(self):
        grid = TimeGrid(np.arange(0.0, 4 * 3600.0, 0.001))
        assert grid.dt_s == pytest.approx(0.001)

    def test_still_rejects_genuinely_non_uniform_long_grid(self):
        times = 1.7e9 + np.arange(0.0, 60.0, 0.001)
        times[30_000] += 0.0004  # a real 0.4 ms glitch, not representation error
        with pytest.raises(ValueError, match="uniform"):
            TimeGrid(times)

    def test_regular_builds_the_anchored_grid_exactly(self):
        grid = TimeGrid.regular(1.7e9, 0.001, 10_000)
        assert len(grid) == 10_000
        assert grid.start_s == pytest.approx(1.7e9)
        assert grid.dt_s == pytest.approx(0.001)

    def test_regular_validates(self):
        with pytest.raises(ValueError, match="positive"):
            TimeGrid.regular(0.0, 0.0, 10)
        with pytest.raises(ValueError, match=">= 1"):
            TimeGrid.regular(0.0, 0.1, 0)


class TestSessionError:
    def test_failure_names_client_phase_and_time(self):
        class Exploding(Session):
            client = "tablet-3"

            def adapt(self, clock):
                raise KeyError("missing rate table")

        engine = SimulationEngine(TimeGrid(np.array([0.0, 0.1])))
        engine.add(Exploding())
        with pytest.raises(SessionError) as excinfo:
            engine.run()
        assert "tablet-3" in str(excinfo.value)
        assert "adapt" in str(excinfo.value)
        assert excinfo.value.client == "tablet-3"
        assert excinfo.value.phase == "adapt"
        assert excinfo.value.time_s == pytest.approx(0.0)

    def test_start_failures_are_wrapped_too(self):
        classifier = object()  # never consulted: the CSI count check fails first
        session = SensingSession(classifier, csi_by_step=[1, 2, 3], client="laptop")
        engine = SimulationEngine(TimeGrid(np.array([0.0, 0.1])))
        engine.add(session)
        with pytest.raises(SessionError, match="laptop.*start"):
            engine.run()


class TestEngineRegistration:
    def test_run_without_sessions_raises(self):
        engine = SimulationEngine(TimeGrid(np.array([0.0, 0.1])))
        with pytest.raises(ValueError, match="no sessions"):
            engine.run()

    def test_duplicate_client_names_rejected(self):
        engine = SimulationEngine(TimeGrid(np.array([0.0, 0.1])))
        engine.add(RecordingSession("a", []))
        with pytest.raises(ValueError, match="duplicate"):
            engine.add(RecordingSession("a", []))

    def test_engine_is_single_use(self):
        """Sessions are stateful; a silent second run would continue them."""
        engine = SimulationEngine(TimeGrid(np.array([0.0, 0.1])))
        engine.add(RecordingSession("a", []))
        engine.run()
        with pytest.raises(RuntimeError, match="already ran"):
            engine.run()


class TestSensingSession:
    def test_tof_readings_must_pair_with_times(self):
        with pytest.raises(ValueError, match="pair"):
            SensingSession(object(), [1.0], tof_times=[0.0, 0.1], tof_readings=[5.0])

    def test_estimates_stream_in_decision_order(self):
        class FakeClassifier:
            wants_tof = True

            def __init__(self):
                self.tof = []

            def push_tof(self, time_s, reading):
                self.tof.append((time_s, reading))

            def push_csi(self, time_s, sample):
                return (time_s, sample) if sample % 2 == 0 else None

        classifier = FakeClassifier()
        seen = []
        session = SensingSession(
            classifier,
            csi_by_step=[0, 1, 2],
            tof_times=[0.0, 0.05, 0.15],
            tof_readings=[7.0, 8.0, 9.0],
            on_estimate=lambda now, est: seen.append(now),
        )
        engine = SimulationEngine(TimeGrid(np.array([0.0, 0.1, 0.2])))
        engine.add(session)
        estimates = engine.run()[session.client]
        # ToF readings arrive before the step's CSI decision, in timestamp order.
        assert classifier.tof == [(0.0, 7.0), (0.05, 8.0), (0.15, 9.0)]
        assert estimates == [(0.0, 0), (0.2, 2)]
        assert seen == [0.0, 0.2]
