"""Tests for the mobility-aware multi-client scheduler (Section 9)."""

import numpy as np
import pytest

from repro.core.hints import MobilityEstimate
from repro.mobility.modes import Heading, MobilityMode
from repro.testing import synthetic_trace
from repro.wlan.scheduler import (
    MobilityAwareScheduler,
    ProportionalFairScheduler,
    RoundRobinScheduler,
    simulate_scheduling,
)

# These tests go through the deprecated 1.1 shim entry points on purpose
# (pinning their behaviour); their DeprecationWarnings are expected here
# while CI escalates unexpected ones to errors.
pytestmark = pytest.mark.filterwarnings("ignore:simulate_:DeprecationWarning")


class TestRoundRobin:
    def test_cycles(self):
        scheduler = RoundRobinScheduler()
        picks = [scheduler.pick(0.0, [10.0, 20.0, 30.0]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]


class TestProportionalFair:
    def test_prefers_underserved_client(self):
        scheduler = ProportionalFairScheduler(alpha=0.5)
        # Serve client 0 heavily.
        for _ in range(10):
            scheduler.account(0, 100.0)
            scheduler.account(1, 0.0)
        # Equal instantaneous rates: the starved client must win.
        assert scheduler.pick(0.0, [50.0, 50.0]) == 1

    def test_prefers_better_channel_when_equally_served(self):
        scheduler = ProportionalFairScheduler()
        assert scheduler.pick(0.0, [10.0, 90.0]) == 1


class TestMobilityAware:
    def test_away_boost(self):
        scheduler = MobilityAwareScheduler()
        away = MobilityEstimate(
            0.0, MobilityMode.MACRO, Heading.AWAY, tof_window_full=True
        )
        scheduler.update_hint(0, away)
        # Equal rates and service: the retreating client is served first —
        # its channel only degrades from here.
        assert scheduler.pick(0.0, [50.0, 50.0]) == 0

    def test_towards_deferred(self):
        scheduler = MobilityAwareScheduler()
        towards = MobilityEstimate(
            0.0, MobilityMode.MACRO, Heading.TOWARDS, tof_window_full=True
        )
        scheduler.update_hint(0, towards)
        # The approaching client waits: the same bits get cheaper shortly.
        assert scheduler.pick(0.0, [50.0, 50.0]) == 1

    def test_mode_sets_memory(self):
        scheduler = MobilityAwareScheduler()
        scheduler.update_hint(0, MobilityEstimate(0.0, MobilityMode.STATIC))
        scheduler.update_hint(1, MobilityEstimate(0.0, MobilityMode.MACRO,
                                                  Heading.AWAY, tof_window_full=True))
        assert scheduler._ewma(0).alpha < scheduler._ewma(1).alpha


class TestSimulateScheduling:
    def _traces(self):
        strong = synthetic_trace(snr_db=30.0, duration_s=10.0)
        weak = synthetic_trace(snr_db=10.0, duration_s=10.0)
        return [strong, weak]

    def test_all_clients_served(self):
        result = simulate_scheduling(RoundRobinScheduler(), self._traces())
        assert all(s > 0 for s in result.slots_served)
        assert all(t > 0 for t in result.per_client_mbps)

    def test_pf_serves_strong_link_more(self):
        """PF allocates more slots where the channel is better; totals are
        at least comparable to round-robin."""
        traces = self._traces()
        rr = simulate_scheduling(RoundRobinScheduler(), traces, transmitter_seed=1)
        pf = simulate_scheduling(ProportionalFairScheduler(), traces, transmitter_seed=1)
        assert pf.per_client_mbps[0] > pf.per_client_mbps[1]
        assert pf.total_mbps > rr.total_mbps * 0.9

    def test_fairness_index_bounds(self):
        result = simulate_scheduling(RoundRobinScheduler(), self._traces())
        assert 0.0 < result.fairness_index <= 1.0

    def test_needs_two_clients(self):
        with pytest.raises(ValueError):
            simulate_scheduling(RoundRobinScheduler(), [synthetic_trace()])

    def test_mobility_aware_front_loads_away_client(self):
        """A retreating client is served eagerly while its channel lasts."""
        degrading = synthetic_trace(snr_db=lambda t: 32.0 - 2.0 * t, duration_s=10.0,
                                    doppler_hz=23.0)
        static = synthetic_trace(snr_db=20.0, duration_s=10.0)
        hints = [
            [MobilityEstimate(0.1, MobilityMode.MACRO, Heading.AWAY,
                              tof_window_full=True)],
            [MobilityEstimate(0.1, MobilityMode.STATIC)],
        ]
        aware = simulate_scheduling(
            MobilityAwareScheduler(), [degrading, static], hints=hints,
            transmitter_seed=2,
        )
        plain = simulate_scheduling(
            ProportionalFairScheduler(), [degrading, static], transmitter_seed=2
        )
        assert aware.per_client_mbps[0] > plain.per_client_mbps[0]
