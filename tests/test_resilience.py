"""The self-healing runtime: every known failure must be a non-event.

Pins the three resilience contracts end to end:

* **rollover golden** — a service on a deliberately tiny grid horizon
  produces estimates bit-identical to a single long-grid run, with the
  late-observation guard still armed across the segment boundary;
* **kill/recover golden** — a hard kill at an *arbitrary* service step
  (mid-segment, across a rollover, before the first cadence checkpoint)
  followed by ``ResilientService.recover`` continues bit-identically
  with the uninterrupted run, even when the newest artifact on disk has
  been corrupted;
* **source supervision** — a flaky source retries with deterministic
  backoff and never re-feeds a consumed observation; a persistently
  failing one trips the circuit breaker; affected clients get counted
  safe-default degraded hints.
"""

import os

import pytest

from repro.core.batched import BatchedMobilityClassifier
from repro.core.hints import MobilityMode
from repro.faults import (
    CheckpointCorruptionFault,
    InjectedFault,
    ServiceKilled,
    ServiceKillFault,
    SourceFault,
)
from repro.resilience import (
    CheckpointManager,
    ResilienceConfig,
    ResilientService,
    SourceSpec,
    SupervisedSource,
    artifact_name,
    list_artifacts,
    scan_checkpoints,
)
from repro.sim.supervisor import SupervisorConfig
from repro.stream import (
    CorruptCheckpoint,
    FleetSpec,
    HorizonExhausted,
    SimulatedSource,
    StreamConfig,
    StreamRouter,
    tof_observation,
)
from repro.telemetry.recorder import TelemetryRecorder

SPEC = FleetSpec(n_clients=8, duration_s=20.0)
DURATION_S = SPEC.duration_s
DT_S = SPEC.csi_period_s


def fresh_source():
    return SimulatedSource(SPEC, seed=17)


LABELS = fresh_source().labels


def fleet_spec():
    return SourceSpec("fleet", fresh_source, clients=tuple(LABELS))


def make_service(tmp_path, horizon_steps=7, recorder=None, on_estimate=None,
                 kill=None, every_s=2.0, keep=3, name="ckpt"):
    return ResilientService(
        BatchedMobilityClassifier(list(LABELS)),
        StreamConfig(dt_s=DT_S, horizon_steps=horizon_steps),
        resilience=ResilienceConfig(
            checkpoint_dir=os.path.join(str(tmp_path), name),
            checkpoint_every_s=every_s,
            keep_checkpoints=keep,
        ),
        recorder=recorder if recorder is not None else TelemetryRecorder(),
        on_estimate=on_estimate,
        kill=kill,
    )


def collect(sink):
    def on_estimate(label, time_s, estimate):
        sink.append((label, time_s, estimate))

    return on_estimate


def streams_equal(a, b):
    if len(a) != len(b):
        return False
    for (la, ta, ea), (lb, tb, eb) in zip(a, b):
        if la != lb or ta != tb or ea.to_dict() != eb.to_dict():
            return False
    return True


@pytest.fixture(scope="module")
def golden():
    """The uninterrupted single-long-grid estimate stream."""
    import tempfile

    got = []
    with tempfile.TemporaryDirectory() as d:
        service = ResilientService(
            BatchedMobilityClassifier(list(LABELS)),
            StreamConfig(dt_s=DT_S, horizon_steps=10_000),
            resilience=ResilienceConfig(checkpoint_dir=os.path.join(d, "g")),
            on_estimate=collect(got),
        )
        service.run([fleet_spec()], until_s=DURATION_S)
        assert service.rollovers == 0
    return got


class TestHorizonExhausted:
    def test_typed_signal_carries_grid_facts(self):
        router = StreamRouter(
            BatchedMobilityClassifier(["a"]),
            config=StreamConfig(dt_s=0.5, horizon_steps=4),
        )
        with pytest.raises(HorizonExhausted) as excinfo:
            router.advance(10.0)
        assert excinfo.value.end_s == pytest.approx(1.5)
        assert excinfo.value.n_steps == 4
        # The historical message survives for text-matching callers.
        assert "stream horizon exhausted" in str(excinfo.value)
        assert "checkpoint and restore" in str(excinfo.value)

    def test_is_a_runtime_error(self):
        assert issubclass(HorizonExhausted, RuntimeError)

    def test_due_steps_run_before_the_raise(self):
        router = StreamRouter(
            BatchedMobilityClassifier(["a"]),
            config=StreamConfig(dt_s=0.5, horizon_steps=4),
        )
        with pytest.raises(HorizonExhausted):
            router.advance(10.0)
        assert router.stepper.next_index == 4  # no work was lost


class TestRolloverGolden:
    def test_rollover_is_bit_identical_to_long_grid(self, golden, tmp_path):
        got = []
        service = make_service(tmp_path, horizon_steps=7, on_estimate=collect(got))
        service.run([fleet_spec()], until_s=DURATION_S)
        assert service.rollovers >= 2
        assert streams_equal(got, golden)

    def test_rollover_counted_and_traced(self, tmp_path):
        recorder = TelemetryRecorder()
        service = make_service(tmp_path, horizon_steps=7, recorder=recorder)
        service.run([fleet_spec()], until_s=DURATION_S)
        counters = {
            m.name: m.value
            for m in recorder.metrics.metrics()
            if m.name == "resilience.rollovers"
        }
        assert counters["resilience.rollovers"] == service.rollovers
        assert sum(
            1 for e in recorder.events if e.kind == "service_rollover"
        ) == service.rollovers

    def test_late_guard_survives_the_segment_boundary(self, tmp_path):
        """After a rollover ``next_index`` is 0 again; the late-floor must
        still refuse observations from the previous segment."""
        recorder = TelemetryRecorder()
        service = make_service(tmp_path, horizon_steps=4, recorder=recorder)
        service.advance(5.0)  # forces rollovers past t=1.5 and t=3.5
        assert service.rollovers >= 1
        assert service.router.late_floor_s is not None
        stale = tof_observation(LABELS[0], 0.2, 200.0)
        assert not service.offer(stale)
        assert any(
            m.name == "stream.late" and m.value > 0
            for m in recorder.metrics.metrics()
        )

    def test_late_floor_round_trips_through_state_dict(self):
        router = StreamRouter(
            BatchedMobilityClassifier(["a"]),
            config=StreamConfig(dt_s=0.5, horizon_steps=10),
        )
        router.late_floor_s = 3.5
        other = StreamRouter(
            BatchedMobilityClassifier(["a"]),
            config=StreamConfig(dt_s=0.5, horizon_steps=10),
        )
        other.load_state_dict(router.state_dict())
        assert other.late_floor_s == 3.5
        # v1 artifacts predate the floor: absent key means fresh.
        state = router.state_dict()
        del state["late_floor_s"]
        other.load_state_dict(state)
        assert other.late_floor_s is None


class TestCheckpointManager:
    def test_artifact_names_sort_by_service_clock(self):
        names = [artifact_name(t) for t in (0.0, 2.5, 10.0, 100.0, 1000.5)]
        assert names == sorted(names)

    def test_cadence_schedules_and_advances(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "c"), every_s=2.0)
        assert manager.next_due_s is None  # unscheduled: never due
        assert not manager.due(100.0)
        manager.schedule_from(0.0)
        assert not manager.due(1.9)
        assert manager.due(2.0)

    def test_save_advances_cadence_past_the_clock(self, tmp_path):
        router = StreamRouter(
            BatchedMobilityClassifier(["a"]),
            config=StreamConfig(dt_s=0.5, horizon_steps=100),
        )
        manager = CheckpointManager(str(tmp_path / "c"), every_s=2.0)
        manager.schedule_from(0.0)
        router.advance(6.6)  # clock now 7.0: three cadence instants behind
        manager.save(router)
        assert manager.next_due_s == pytest.approx(8.0)  # no stale backlog

    def test_retention_keeps_last_k(self, tmp_path):
        recorder = TelemetryRecorder()
        router = StreamRouter(
            BatchedMobilityClassifier(["a"]),
            config=StreamConfig(dt_s=0.5, horizon_steps=100),
        )
        manager = CheckpointManager(
            str(tmp_path / "c"), every_s=1.0, keep=2, recorder=recorder
        )
        for until_s in (1.0, 2.0, 3.0, 4.0):
            router.advance(until_s)
            manager.save(router)
        artifacts = list_artifacts(str(tmp_path / "c"))
        assert len(artifacts) == 2
        pruned = sum(
            m.value
            for m in recorder.metrics.metrics()
            if m.name == "resilience.checkpoints_pruned"
        )
        assert pruned == 2

    def test_scan_returns_newest_valid(self, tmp_path):
        router = StreamRouter(
            BatchedMobilityClassifier(["a"]),
            config=StreamConfig(dt_s=0.5, horizon_steps=100),
        )
        manager = CheckpointManager(str(tmp_path / "c"), every_s=1.0)
        router.advance(1.0)
        manager.save(router)
        router.advance(2.0)
        newest = manager.save(router)
        state, path, rejected = scan_checkpoints(str(tmp_path / "c"))
        assert path == newest
        assert rejected == []
        assert state["router"]["next_index"] == router.stepper.next_index

    def test_scan_falls_back_past_a_corrupt_newest(self, tmp_path):
        recorder = TelemetryRecorder()
        router = StreamRouter(
            BatchedMobilityClassifier(["a"]),
            config=StreamConfig(dt_s=0.5, horizon_steps=100),
        )
        manager = CheckpointManager(str(tmp_path / "c"), every_s=1.0)
        router.advance(1.0)
        older = manager.save(router)
        router.advance(2.0)
        newest = manager.save(router)
        CheckpointCorruptionFault(mode="truncate").corrupt(newest)
        state, path, rejected = scan_checkpoints(str(tmp_path / "c"), recorder)
        assert path == older
        assert rejected == [newest]
        assert any(
            m.name == "resilience.corrupt_artifacts" and m.value == 1
            for m in recorder.metrics.metrics()
        )
        assert any(e.kind == "checkpoint_rejected" for e in recorder.events)

    def test_scan_raises_when_nothing_is_trustworthy(self, tmp_path):
        directory = tmp_path / "c"
        directory.mkdir()
        (directory / "service-0000000001000.ckpt").write_bytes(b"rot")
        with pytest.raises(CorruptCheckpoint, match="no valid checkpoint"):
            scan_checkpoints(str(directory))

    def test_scan_of_empty_directory_raises(self, tmp_path):
        with pytest.raises(CorruptCheckpoint, match="no artifacts"):
            scan_checkpoints(str(tmp_path / "missing"))

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError, match="every_s"):
            CheckpointManager(str(tmp_path / "c"), every_s=0.0)
        with pytest.raises(ValueError, match="keep"):
            CheckpointManager(str(tmp_path / "c"), every_s=1.0, keep=0)
        with pytest.raises(ValueError, match="checkpoint_every_s"):
            ResilienceConfig(checkpoint_dir="x", checkpoint_every_s=-1.0)
        with pytest.raises(ValueError, match="keep_checkpoints"):
            ResilienceConfig(checkpoint_dir="x", keep_checkpoints=0)
        with pytest.raises(ValueError, match="checkpoint_dir"):
            ResilienceConfig(checkpoint_dir="")


class TestKillRecoverGolden:
    def run_killed_then_recovered(self, tmp_path, kill_step, golden,
                                  corrupt_newest=False):
        pre = []
        service = make_service(
            tmp_path, on_estimate=collect(pre),
            kill=ServiceKillFault(at_step=kill_step),
        )
        with pytest.raises(ServiceKilled):
            service.run([fleet_spec()], until_s=DURATION_S)
        assert service.total_steps == kill_step
        if corrupt_newest:
            artifacts = list_artifacts(service.checkpoints.directory)
            CheckpointCorruptionFault(mode="flip_byte").corrupt(artifacts[-1])
        post = []
        recovered = ResilientService.recover(
            service.resilience, on_estimate=collect(post)
        )
        resume_s = recovered.clock_s
        recovered.run([fleet_spec()], until_s=DURATION_S)
        merged = [x for x in pre if x[1] < resume_s] + post
        assert streams_equal(merged, golden), f"diverged for kill at {kill_step}"
        return recovered

    @pytest.mark.parametrize("kill_step", [1, 3, 17, 29, 40])
    def test_kill_at_arbitrary_step_resumes_bit_identically(
        self, tmp_path, kill_step, golden
    ):
        self.run_killed_then_recovered(tmp_path, kill_step, golden)

    def test_kill_across_rollover_with_corrupt_newest_artifact(
        self, tmp_path, golden
    ):
        """The hardest shape at once: the kill lands past several segment
        boundaries AND the newest artifact is rotten, so recovery must
        fall back one artifact and then roll over again to catch up."""
        recovered = self.run_killed_then_recovered(
            tmp_path, 29, golden, corrupt_newest=True
        )
        assert recovered.rollovers >= 1

    def test_recovery_is_counted_and_traced(self, tmp_path, golden):
        service = make_service(tmp_path, kill=ServiceKillFault(at_step=17))
        with pytest.raises(ServiceKilled):
            service.run([fleet_spec()], until_s=DURATION_S)
        recorder = TelemetryRecorder()
        recovered = ResilientService.recover(service.resilience, recorder=recorder)
        assert recovered.total_steps <= 17
        assert any(
            m.name == "resilience.recoveries" and m.value == 1
            for m in recorder.metrics.metrics()
        )
        assert any(e.kind == "service_recovered" for e in recorder.events)

    def test_fresh_service_writes_recovery_point_zero(self, tmp_path):
        service = make_service(tmp_path)
        artifacts = list_artifacts(service.checkpoints.directory)
        assert len(artifacts) == 1  # recoverable before the first step

    def test_recover_refuses_an_empty_directory(self, tmp_path):
        with pytest.raises(CorruptCheckpoint):
            ResilientService.recover(
                ResilienceConfig(checkpoint_dir=str(tmp_path / "nothing"))
            )

    def test_checkpoint_cadence_lands_on_sim_time_instants(self, tmp_path):
        service = make_service(tmp_path, every_s=2.0, keep=100)
        service.run([fleet_spec()], until_s=DURATION_S)
        names = [os.path.basename(p) for p in
                 list_artifacts(service.checkpoints.directory)]
        # service-<millis>.ckpt stamps: baseline at 0, every 2 s while
        # running, and one final artifact at the terminal clock.
        stamps = [int(n[len("service-"):-len(".ckpt")]) for n in names]
        assert stamps[0] == 0
        assert all(stamp % 2000 == 0 for stamp in stamps[:-1])
        assert stamps[-1] >= int(DURATION_S * 1000)


class TestSupervisedSource:
    def trace(self, n=10):
        return [tof_observation("a", 0.1 * (i + 1), 200.0 + i) for i in range(n)]

    def test_clean_source_delivers_everything(self):
        spec = SourceSpec("s", lambda: list(self.trace()), clients=("a",))
        source = SupervisedSource(spec)
        got = []
        while source.peek() is not None:
            got.append(source.pop())
        assert len(got) == 10
        assert source.consumed == 10
        assert source.exhausted and not source.shed

    def test_retry_fast_forwards_without_duplicates(self):
        fault = SourceFault(at_index=4, n_failures=1)
        spec = SourceSpec("s", lambda: fault.wrap(iter(self.trace())), clients=("a",))
        recorder = TelemetryRecorder()
        source = SupervisedSource(
            spec,
            policy=SupervisorConfig(policy="retry", max_retries=2,
                                    backoff_base_s=0.05),
            recorder=recorder,
        )
        got = []
        while source.peek() is not None:
            got.append(source.pop())
        times = [o.time_s for o in got]
        assert times == sorted(set(times))  # no duplicates, still ordered
        assert source.failures == 0  # reset once delivery resumed
        assert any(
            m.name == "resilience.source_retries" and m.value == 1
            for m in recorder.metrics.metrics()
        )
        assert any(e.kind == "source_restored" for e in recorder.events)

    def test_backoff_window_drops_are_counted(self):
        fault = SourceFault(at_index=4, n_failures=1)
        spec = SourceSpec("s", lambda: fault.wrap(iter(self.trace())), clients=("a",))
        recorder = TelemetryRecorder()
        source = SupervisedSource(
            spec,
            policy=SupervisorConfig(policy="retry", max_retries=2,
                                    backoff_base_s=0.25),
            recorder=recorder,
        )
        got = []
        while source.peek() is not None:
            got.append(source.pop())
        # Failure struck after delivering t=0.1..0.4; backoff until 0.65
        # drops t=0.5 and 0.6.
        dropped = sum(
            m.value
            for m in recorder.metrics.metrics()
            if m.name == "resilience.source_dropped"
        )
        assert dropped == 2
        assert [round(o.time_s, 1) for o in got[-4:]] == [0.7, 0.8, 0.9, 1.0]

    def test_circuit_breaker_sheds_after_max_retries(self):
        fault = SourceFault(at_index=4, n_failures=10)
        spec = SourceSpec("s", lambda: fault.wrap(iter(self.trace())), clients=("a",))
        outages = []
        recorder = TelemetryRecorder()
        source = SupervisedSource(
            spec,
            policy=SupervisorConfig(policy="retry", max_retries=2,
                                    backoff_base_s=0.05),
            recorder=recorder,
            on_outage=lambda s, t, terminal: outages.append((s.name, terminal)),
        )
        got = []
        while source.peek() is not None:
            got.append(source.pop())
        assert source.shed
        assert len(got) == 4  # everything before the poisoned index
        assert outages == [("s", False), ("s", False), ("s", True)]
        assert any(
            m.name == "resilience.sources_shed" and m.value == 1
            for m in recorder.metrics.metrics()
        )

    def test_resume_at_cursor_skips_consumed_items(self):
        spec = SourceSpec("s", lambda: list(self.trace()), clients=("a",))
        source = SupervisedSource(spec, resume_at=6)
        got = []
        while source.peek() is not None:
            got.append(source.pop())
        assert [round(o.time_s, 1) for o in got] == [0.7, 0.8, 0.9, 1.0]
        assert source.consumed == 10

    def test_degraded_hints_served_while_source_down(self, tmp_path):
        fault = SourceFault(at_index=40, n_failures=1)
        spec = SourceSpec(
            "fleet", lambda: fault.wrap(fresh_source()), clients=tuple(LABELS)
        )
        got = []
        recorder = TelemetryRecorder()
        service = make_service(tmp_path, recorder=recorder, on_estimate=collect(got))
        service.run([spec], until_s=DURATION_S)
        hints = sum(
            m.value
            for m in recorder.metrics.metrics()
            if m.name == "resilience.degraded_hints"
        )
        assert hints == len(LABELS)  # one outage x full client list
        degraded = [e for (_l, _t, e) in got if not e.tof_window_full]
        assert degraded and all(
            e.mode is MobilityMode.STATIC for e in degraded[: len(LABELS)]
        )


class TestChaosInjectors:
    def test_source_fault_budget_is_shared_across_wraps(self):
        fault = SourceFault(at_index=2, n_failures=2)
        items = list(range(5))
        for attempt in range(2):
            with pytest.raises(InjectedFault):
                list(fault.wrap(iter(items)))
        assert fault.n_fired == 2
        assert list(fault.wrap(iter(items))) == items  # budget spent

    def test_source_fault_seeded_arm_is_deterministic(self):
        a = SourceFault(seed=7)
        b = SourceFault(seed=7)
        a.arm(100)
        b.arm(100)
        assert a.at_index == b.at_index

    def test_corruption_fault_modes(self, tmp_path):
        for mode in ("truncate", "flip_byte", "wrong_format"):
            path = tmp_path / f"{mode}.ckpt"
            router = StreamRouter(
                BatchedMobilityClassifier(["a"]),
                config=StreamConfig(dt_s=0.5, horizon_steps=10),
            )
            from repro.stream import save_checkpoint

            save_checkpoint(router, path)
            fault = CheckpointCorruptionFault(mode=mode)
            fault.corrupt(str(path))
            assert fault.n_fired == 1
            with pytest.raises((CorruptCheckpoint, ValueError)):
                from repro.stream import load_checkpoint

                load_checkpoint(path)

    def test_corruption_fault_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            CheckpointCorruptionFault(mode="set-on-fire")

    def test_service_kill_fault_fires_once(self):
        kill = ServiceKillFault(at_step=5)
        assert not kill.due(4)
        assert kill.due(5)
        with pytest.raises(ServiceKilled):
            kill.fire()
        assert kill.n_fired == 1
        assert not kill.due(6)  # a crash only happens once

    def test_service_kill_fault_seeded_arm(self):
        a = ServiceKillFault(seed=3)
        b = ServiceKillFault(seed=3)
        a.arm(50)
        b.arm(50)
        assert a.at_step == b.at_step
        assert 1 <= a.at_step <= 50


class TestCampaignExperiment:
    def test_quick_campaign_meets_all_slos(self, tmp_path):
        from repro.experiments import ext_resilience

        report = tmp_path / "report.json"
        result = ext_resilience.run(
            n_clients=16,
            duration_s=12.0,
            report_json=str(report),
            workdir=str(tmp_path / "campaign"),
        )
        assert result.ok, result.slo_breaches
        assert result.rollover_equivalent
        assert result.survivors_bit_identical
        assert result.nominal_losses == 0
        assert 0 <= result.recovery_replayed_steps <= result.recovery_bound_steps
        import json

        persisted = json.loads(report.read_text())
        assert persisted["ok"] is True
        assert persisted["chaos_counters"]["resilience.recoveries"] == 1
