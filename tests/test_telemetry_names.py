"""Tests for the telemetry name registry (repro.telemetry.names).

The registry is a *contract*: every name a real instrumented run emits
must resolve to a registered name or pattern, and the docs table in
``docs/observability.md`` must match the registry byte-for-byte.  The
static side of the contract (literal names at emission sites) is REP003
in ``repro.analysis``; this file checks the dynamic side against an
actual engine run.
"""

from pathlib import Path

import pytest

from repro.experiments.common import sense_and_classify
from repro.mobility.scenarios import macro_scenario
from repro.rate.atheros import AtherosRateAdaptation
from repro.telemetry import TelemetryRecorder
from repro.telemetry import names
from repro.testing import synthetic_trace
from repro.util.geometry import Point
from repro.wlan.uplink import simulate_uplink

REPO_ROOT = Path(__file__).resolve().parents[1]


def unregistered_names(recorder):
    """Every (kind, name) the recorder holds that the registry disowns."""
    bad = set()
    for metric in recorder.metrics.metrics():
        kind = next(metric.rows())[0]  # "counter" / "gauge" / "histogram"
        if not names.is_registered(metric.name, kind):
            bad.add((kind, metric.name))
    for event in recorder.events:
        if not names.is_registered(event.kind, "event"):
            bad.add(("event", event.kind))
    return sorted(bad)


class TestRegistryLookup:
    def test_exact_name(self):
        assert names.is_registered("handoffs", "counter")
        assert not names.is_registered("handofs", "counter")

    def test_pattern_matches_one_segment(self):
        assert names.is_registered("classifier.mode.static", "counter")
        assert names.is_registered("channel.csi.calls", "counter")
        # `*` is one dot-free segment, not a glob over dots.
        assert not names.is_registered("channel.a.b.calls", "counter")

    def test_kind_narrows_lookup(self):
        assert names.is_registered("run_start", "event")
        assert not names.is_registered("run_start", "counter")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            names.entries("meter")

    def test_match_prefix_for_fstrings(self):
        assert names.match_prefix("channel.", "counter")
        assert names.match_prefix("classifier.mode.", "counter")
        assert not names.match_prefix("chanel.", "counter")
        assert not names.match_prefix("classifier.mode.", "event")

    def test_registry_is_sorted_and_typed(self):
        for entry in names.REGISTRY:
            assert entry.kind in names.KINDS
            assert entry.meaning
        per_kind = {}
        for entry in names.REGISTRY:
            per_kind.setdefault(entry.kind, []).append(entry.name)
        for kind, kind_names in per_kind.items():
            assert kind_names == sorted(kind_names), f"{kind} names unsorted"
            assert len(set(kind_names)) == len(kind_names), f"{kind} has duplicates"


class TestRealRunEmitsOnlyRegisteredNames:
    """The dynamic half of the schema contract."""

    def test_sensing_run_is_fully_registered(self):
        recorder = TelemetryRecorder()
        scenario = macro_scenario(Point(2.0, 3.0), seed=7)
        sense_and_classify(
            scenario, ap=Point(0.0, 0.0), duration_s=12.0, seed=7, recorder=recorder
        )
        assert unregistered_names(recorder) == []
        # The run actually exercised the registry (not vacuously true).
        assert recorder.metrics.metrics() and len(recorder.events) > 0

    def test_uplink_run_is_fully_registered(self):
        recorder = TelemetryRecorder()
        trace = synthetic_trace(snr_db=25.0, duration_s=5.0)
        simulate_uplink(AtherosRateAdaptation(), trace, seed=3, recorder=recorder)
        assert unregistered_names(recorder) == []

    def test_deliberate_violation_is_caught(self):
        """An unregistered emission must be visible to the checker."""
        recorder = TelemetryRecorder()
        recorder.count("sneaky.unregistered.counter")
        recorder.event("sneaky_event", 0.0)
        bad = unregistered_names(recorder)
        assert ("counter", "sneaky.unregistered.counter") in bad
        assert ("event", "sneaky_event") in bad


class TestDocsSync:
    def test_observability_docs_table_is_current(self):
        text = (REPO_ROOT / "docs" / "observability.md").read_text(encoding="utf-8")
        assert names.docs_in_sync(text), (
            "docs/observability.md registry table is stale — run "
            "`python -m repro.telemetry.names --write docs/observability.md`"
        )

    def test_sync_docs_replaces_block(self):
        stale = (
            "# Docs\n\n"
            f"{names.DOCS_BEGIN}\nold table\n{names.DOCS_END}\n\n## After\n"
        )
        synced = names.sync_docs(stale)
        assert "old table" not in synced
        assert names.docs_in_sync(synced)
        assert "## After" in synced
        # Re-syncing is idempotent.
        assert names.sync_docs(synced) == synced

    def test_cli_check_mode(self, tmp_path):
        import subprocess
        import sys

        doc = tmp_path / "doc.md"
        doc.write_text(f"{names.DOCS_BEGIN}\nstale\n{names.DOCS_END}\n")
        check = subprocess.run(
            [sys.executable, "-m", "repro.telemetry.names", "--check", str(doc)],
            capture_output=True,
            text=True,
        )
        assert check.returncode == 1
        write = subprocess.run(
            [sys.executable, "-m", "repro.telemetry.names", "--write", str(doc)],
            capture_output=True,
            text=True,
        )
        assert write.returncode == 0
        recheck = subprocess.run(
            [sys.executable, "-m", "repro.telemetry.names", "--check", str(doc)],
            capture_output=True,
            text=True,
        )
        assert recheck.returncode == 0, recheck.stdout + recheck.stderr
