"""Property-based tests for IO formats and additional invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aoa_extension import estimate_aoa
from repro.io.csitool import N_SUBCARRIERS, CsiRecord, read_csitool_log, write_csitool_log
from repro.io.traces import load_trace, save_trace
from repro.testing import synthetic_trace
from repro.util.textplot import render_bars, render_cdf
from repro.util.stats import EmpiricalCDF

component = st.integers(min_value=-127, max_value=127)


@st.composite
def csi_records(draw):
    n_tx = draw(st.integers(min_value=1, max_value=3))
    n_rx = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    csi = rng.integers(-127, 128, (N_SUBCARRIERS, n_tx, n_rx)) + 1j * rng.integers(
        -127, 128, (N_SUBCARRIERS, n_tx, n_rx)
    )
    return CsiRecord(
        timestamp_low=draw(st.integers(min_value=0, max_value=2**32 - 1)),
        bfee_count=draw(st.integers(min_value=0, max_value=2**16 - 1)),
        n_rx=n_rx,
        n_tx=n_tx,
        rssi_a=draw(st.integers(min_value=0, max_value=100)),
        rssi_b=draw(st.integers(min_value=0, max_value=100)),
        rssi_c=draw(st.integers(min_value=0, max_value=100)),
        noise=draw(st.integers(min_value=-127, max_value=0)),
        agc=draw(st.integers(min_value=0, max_value=60)),
        antenna_sel=draw(st.integers(min_value=0, max_value=63)),
        rate=draw(st.integers(min_value=0, max_value=2**16 - 1)),
        csi=csi.astype(complex),
    )


class TestCsiToolRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(record=csi_records())
    def test_roundtrip_preserves_everything(self, record):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "log.dat"
            self._check(record, path)

    @staticmethod
    def _check(record, path):
        write_csitool_log([record], path)
        loaded = read_csitool_log(path)
        assert len(loaded) == 1
        got = loaded[0]
        assert got.timestamp_low == record.timestamp_low
        assert got.bfee_count == record.bfee_count
        assert (got.rssi_a, got.rssi_b, got.rssi_c) == (
            record.rssi_a,
            record.rssi_b,
            record.rssi_c,
        )
        assert got.noise == record.noise
        assert got.agc == record.agc
        assert got.antenna_sel == record.antenna_sel
        assert got.rate == record.rate
        assert np.array_equal(got.csi, record.csi)


class TestTraceRoundTrip:
    @settings(max_examples=10, deadline=None)
    @given(
        snr=st.floats(min_value=-10.0, max_value=45.0),
        duration=st.floats(min_value=0.5, max_value=5.0),
    )
    def test_save_load_identity(self, snr, duration):
        import tempfile
        from pathlib import Path

        trace = synthetic_trace(snr_db=snr, duration_s=duration)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.npz"
            self._check(trace, path)

    @staticmethod
    def _check(trace, path):
        save_trace(trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.times, trace.times)
        assert np.array_equal(loaded.snr_db, trace.snr_db)
        assert np.array_equal(loaded.doppler_hz, trace.doppler_hz)


class TestAoAProperties:
    @settings(max_examples=40)
    @given(
        st.floats(min_value=-1.2, max_value=1.2),
        st.integers(min_value=2, max_value=6),
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=-3.1, max_value=3.1),
    )
    def test_estimate_invariant_to_gain_and_phase(self, angle, n, gain, phase):
        m = np.arange(n)
        h = gain * np.exp(1j * phase) * np.exp(-1j * np.pi * m * np.sin(angle))
        assert estimate_aoa(h) == pytest.approx(angle, abs=1e-6)


class TestPlotProperties:
    @settings(max_examples=20)
    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=50))
    def test_cdf_render_never_crashes(self, samples):
        chart = render_cdf({"s": EmpiricalCDF(samples)})
        assert "s" in chart

    @settings(max_examples=20)
    @given(
        st.dictionaries(
            st.text(alphabet="abcdef", min_size=1, max_size=6),
            st.floats(min_value=0.0, max_value=1000.0),
            min_size=1,
            max_size=6,
        )
    )
    def test_bars_contain_every_label(self, values):
        chart = render_bars(values)
        for name in values:
            assert name in chart
