"""Golden-value determinism tests for the engine-backed simulators.

Every value below was recorded by running the *pre-refactor* hand-rolled
loops (``simulate_stack``, ``simulate_roaming``, ``simulate_scheduling``,
``simulate_uplink``, ``sense_and_classify``) at the stated seeds, before
the outer loops moved into :class:`repro.sim.SimulationEngine`.  The
refactor is required to be bit-identical: sessions replay the same RNG
draws in the same order, and the engine's step windows tile the grid
exactly as the free-running frame loops did.  Any drift here means the
engine changed the simulation, not just its plumbing.

Seeds: stack walk/channel 1234, stack protocols 99; roaming walk/channel
77, roaming protocols 42; scheduler transmitter 3; sensing 5 and 11.
"""

import numpy as np
import pytest

from repro.channel.config import ChannelConfig
from repro.core.hints import MobilityEstimate
from repro.experiments.common import classification_decisions, sense_and_classify
from repro.mobility.modes import Heading, MobilityMode
from repro.mobility.scenarios import macro_scenario, static_scenario
from repro.rate.atheros import AtherosRateAdaptation
from repro.roaming.schemes import ControllerRoaming, DefaultClientRoaming
from repro.roaming.simulator import simulate_roaming
from repro.testing import synthetic_trace
from repro.util.geometry import Point
from repro.wlan.floorplan import default_office_floorplan
from repro.wlan.multilink import MultiApChannel
from repro.wlan.scheduler import (
    MobilityAwareScheduler,
    ProportionalFairScheduler,
    RoundRobinScheduler,
    simulate_scheduling,
)
from repro.wlan.stack import default_stack, mobility_aware_stack, simulate_stack
from repro.wlan.uplink import simulate_uplink

# These tests go through the deprecated 1.1 shim entry points on purpose
# (pinning their behaviour); their DeprecationWarnings are expected here
# while CI escalates unexpected ones to errors.
pytestmark = pytest.mark.filterwarnings("ignore:simulate_:DeprecationWarning")

AREA = (2.0, 2.0, 38.0, 23.0)


class TestStackGolden:
    """Fig. 13-style integrated stack, 12 s walk, seeds 1234 / 99."""

    @pytest.fixture(scope="class")
    def multi(self):
        floorplan = default_office_floorplan()
        scenario = macro_scenario(Point(5.0, 5.0), area=AREA, seed=1234)
        trajectory = scenario.sample(12.0, 0.02)
        cfg = ChannelConfig(
            tx_power_dbm=8.0, rician_k_db=-2.0, n_paths=16, shadowing_sigma_db=5.0
        )
        return MultiApChannel(floorplan, cfg, seed=1234).evaluate(
            trajectory, sample_interval_s=0.1, include_h=True
        )

    def test_mobility_aware_stack_matches_prerefactor(self, multi):
        aware = simulate_stack(multi, mobility_aware_stack(), seed=99)
        assert aware.mean_throughput_mbps == 113.269
        assert (aware.n_handoffs, aware.n_scans, aware.n_feedbacks) == (1, 0, 166)
        assert int(aware.ap_timeline.sum()) == 51
        assert [float(x) for x in aware.goodput_mbps[:3]] == [94.2, 85.56, 105.96]

    def test_default_stack_matches_prerefactor(self, multi):
        default = simulate_stack(multi, default_stack(), seed=99)
        assert default.mean_throughput_mbps == 100.23199999999999
        assert (default.n_handoffs, default.n_scans, default.n_feedbacks) == (1, 1, 59)
        assert int(default.ap_timeline.sum()) == 8


class TestRoamingGolden:
    """Fig. 7-style roaming comparison, 12 s walk, seeds 77 / 42."""

    @pytest.fixture(scope="class")
    def multi(self):
        floorplan = default_office_floorplan()
        scenario = macro_scenario(Point(6.0, 6.0), area=AREA, seed=77)
        trajectory = scenario.sample(12.0, 0.02)
        cfg = ChannelConfig(tx_power_dbm=8.0, shadowing_sigma_db=3.0)
        return MultiApChannel(floorplan, cfg, seed=77).evaluate(
            trajectory, sample_interval_s=0.1, include_h=True
        )

    @pytest.mark.parametrize(
        "scheme_cls, mean_mbps, n_handoffs, n_scans",
        [
            (DefaultClientRoaming, 154.0955428304599, 1, 1),
            (ControllerRoaming, 171.76983748747293, 1, 0),
        ],
    )
    def test_roaming_matches_prerefactor(self, multi, scheme_cls, mean_mbps, n_handoffs, n_scans):
        mobile = np.ones(len(multi.times), dtype=bool)
        result = simulate_roaming(
            multi, scheme_cls(), device_mobile_truth=mobile, mac_efficiency=0.65, seed=42
        )
        assert result.mean_throughput_mbps == mean_mbps
        assert (len(result.handoffs), result.n_scans) == (n_handoffs, n_scans)


class TestSchedulerGolden:
    """Three synthetic clients, transmitter seed 3."""

    @pytest.fixture(scope="class")
    def traces(self):
        return [
            synthetic_trace(snr_db=22.0, duration_s=10.0),
            synthetic_trace(snr_db=lambda t: 10.0 + 1.2 * t, duration_s=10.0, doppler_hz=23.0),
            synthetic_trace(snr_db=lambda t: 34.0 - 1.2 * t, duration_s=10.0, doppler_hz=23.0),
        ]

    @pytest.fixture(scope="class")
    def hints(self):
        return [
            [MobilityEstimate(0.1, MobilityMode.STATIC)],
            [MobilityEstimate(0.1, MobilityMode.MACRO, Heading.TOWARDS, tof_window_full=True)],
            [MobilityEstimate(0.1, MobilityMode.MACRO, Heading.AWAY, tof_window_full=True)],
        ]

    @pytest.mark.parametrize(
        "scheduler_cls, use_hints, per_client, slots",
        [
            (
                RoundRobinScheduler,
                False,
                [41.58806892616657, 17.840682338459597, 35.78023174130749],
                [803, 802, 802],
            ),
            (
                ProportionalFairScheduler,
                False,
                [34.103598949282095, 17.27666499361015, 43.13318539196103],
                [715, 743, 952],
            ),
            (
                MobilityAwareScheduler,
                True,
                [31.442577806818026, 14.087297458742356, 50.100227719646455],
                [596, 667, 1145],
            ),
        ],
    )
    def test_scheduler_matches_prerefactor(
        self, traces, hints, scheduler_cls, use_hints, per_client, slots
    ):
        result = simulate_scheduling(
            scheduler_cls(), traces, hints=hints if use_hints else None, transmitter_seed=3
        )
        assert result.per_client_mbps == per_client
        assert result.slots_served == slots


class TestUplinkGolden:
    def test_uplink_matches_prerefactor(self):
        trace = synthetic_trace(snr_db=lambda t: 25.0 - 0.8 * t, duration_s=10.0, doppler_hz=15.0)
        hints = [MobilityEstimate(2.0, MobilityMode.MACRO, Heading.AWAY, tof_window_full=True)]
        result = simulate_uplink(AtherosRateAdaptation(), trace, hints=hints)
        assert result.throughput_mbps == 82.76583136641489
        assert result.rate_result.n_frames == 2391


class TestSensingGolden:
    def test_sense_and_classify_matches_prerefactor(self):
        sensed = sense_and_classify(
            macro_scenario(Point(10.0, 4.0), seed=5), Point(0.0, 0.0), duration_s=30.0, seed=5
        )
        assert len(sensed.hints) == 59
        assert sensed.hints[0].mode == MobilityMode.MICRO

    def test_classification_decisions_matches_prerefactor(self):
        outcome = classification_decisions(
            static_scenario(Point(8.0, 3.0)), Point(0.0, 0.0), duration_s=40.0, seed=11
        )
        assert len(outcome) == 70
        assert outcome.accuracy() == 1.0
