"""Unit tests for the AoA future-work extension (paper Section 9)."""

import math

import numpy as np
import pytest

from repro.core.aoa_extension import (
    AoAAugmentedDetector,
    AoAConfig,
    AoASampler,
    AoATrendDetector,
    estimate_aoa,
)
from repro.core.tof_trend import ToFTrendDetector
from repro.phy.tof import ToFConfig, ToFSampler


class TestEstimateAoA:
    def test_recovers_steering_angle(self):
        for true_angle in (-0.8, -0.2, 0.0, 0.35, 1.0):
            m = np.arange(3)
            h = np.exp(-1j * math.pi * m * math.sin(true_angle))
            assert estimate_aoa(h) == pytest.approx(true_angle, abs=1e-6)

    def test_robust_to_common_gain(self):
        m = np.arange(3)
        h = 3.7 * np.exp(1j * 0.9) * np.exp(-1j * math.pi * m * math.sin(0.4))
        assert estimate_aoa(h) == pytest.approx(0.4, abs=1e-6)

    def test_needs_two_elements(self):
        with pytest.raises(ValueError):
            estimate_aoa(np.array([1.0 + 0j]))


class TestAoATrendDetector:
    def _push_seconds(self, detector, angles):
        for angle in angles:
            for _ in range(detector.config.samples_per_median):
                detector.push(angle)

    def test_sweep_detected(self):
        detector = AoATrendDetector()
        self._push_seconds(detector, [0.0, 0.15, 0.30, 0.45, 0.60])
        assert detector.sweeping

    def test_constant_angle_no_sweep(self):
        detector = AoATrendDetector()
        self._push_seconds(detector, [0.5] * 6)
        assert not detector.sweeping

    def test_wobble_no_sweep(self):
        detector = AoATrendDetector()
        self._push_seconds(detector, [0.5, 0.55, 0.45, 0.52, 0.48, 0.5])
        assert not detector.sweeping

    def test_unwraps_through_pi(self):
        detector = AoATrendDetector()
        # Sweep crossing the +-pi boundary: 2.9 -> 3.05 -> -3.08 (=3.20)...
        angles = [2.9, 3.05, -(2 * math.pi - 3.20), -(2 * math.pi - 3.35), -(2 * math.pi - 3.50)]
        self._push_seconds(detector, angles)
        assert detector.sweeping

    def test_reset(self):
        detector = AoATrendDetector()
        self._push_seconds(detector, [0.0, 0.15, 0.30, 0.45, 0.60])
        detector.reset()
        assert not detector.sweeping
        assert not detector.window_full


class TestAugmentedDetector:
    def test_circular_walk_now_detected_as_macro(self):
        """The Section-9 failure case, fixed by the extension."""
        config = AoAConfig()
        detector = AoAAugmentedDetector(ToFTrendDetector())
        rng = np.random.default_rng(1)
        tof_sampler = ToFSampler(ToFConfig(), seed=2)
        aoa_sampler = AoASampler(config, seed=3)

        # Circle of radius 8 m at 1.2 m/s: constant distance, sweeping angle.
        t = np.arange(0.0, 12.0, 0.02)
        angles = 1.2 / 8.0 * t
        tof_readings = tof_sampler.sample(np.full_like(t, 8.0))
        aoa_readings = aoa_sampler.sample(angles)
        for tof, aoa in zip(tof_readings, aoa_readings):
            detector.push_tof(float(tof))
            detector.push_aoa(float(aoa))
        assert detector.is_macro  # AoA sweep caught the tangential walk
        del rng

    def test_micro_still_micro(self):
        detector = AoAAugmentedDetector(ToFTrendDetector())
        tof_sampler = ToFSampler(ToFConfig(), seed=4)
        aoa_sampler = AoASampler(seed=5)
        rng = np.random.default_rng(6)

        t = np.arange(0.0, 12.0, 0.02)
        distances = 8.0 + rng.normal(0.0, 0.05, len(t))
        angles = 0.4 + rng.normal(0.0, 0.02, len(t))  # wobble only
        for tof, aoa in zip(tof_sampler.sample(distances), aoa_sampler.sample(angles)):
            detector.push_tof(float(tof))
            detector.push_aoa(float(aoa))
        assert not detector.is_macro

    def test_radial_walk_keeps_heading(self):
        from repro.mobility.modes import Heading

        detector = AoAAugmentedDetector(ToFTrendDetector())
        tof_sampler = ToFSampler(ToFConfig(), seed=7)
        t = np.arange(0.0, 10.0, 0.02)
        distances = 8.0 + 1.2 * t
        for tof in tof_sampler.sample(distances):
            detector.push_tof(float(tof))
            detector.push_aoa(0.4)
        assert detector.is_macro
        assert detector.heading == Heading.AWAY
