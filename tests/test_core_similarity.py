"""Unit tests for the CSI similarity metric (Eq. 1)."""

import numpy as np
import pytest

from repro.core.similarity import (
    csi_similarity,
    csi_similarity_series,
    csi_similarity_stream,
    similarity_timescale,
)


def _random_csi(rng, k=52, t=3, r=2):
    return rng.standard_normal((k, t, r)) + 1j * rng.standard_normal((k, t, r))


class TestSimilarity:
    def test_identical_samples(self):
        rng = np.random.default_rng(0)
        csi = _random_csi(rng)
        assert csi_similarity(csi, csi) == pytest.approx(1.0)

    def test_scale_invariance(self):
        """A common gain change (AGC, body blockage) does not alter Eq. 1."""
        rng = np.random.default_rng(1)
        csi = _random_csi(rng)
        assert csi_similarity(csi, 7.3 * csi) == pytest.approx(1.0)

    def test_phase_invariance(self):
        """Common phase rotation (CFO) is removed by taking magnitudes."""
        rng = np.random.default_rng(2)
        csi = _random_csi(rng)
        rotated = csi * np.exp(1j * 1.234)
        assert csi_similarity(csi, rotated) == pytest.approx(1.0)

    def test_independent_samples_low_similarity(self):
        rng = np.random.default_rng(3)
        values = [
            csi_similarity(_random_csi(rng), _random_csi(rng)) for _ in range(50)
        ]
        assert abs(np.mean(values)) < 0.2

    def test_range(self):
        rng = np.random.default_rng(4)
        for _ in range(20):
            s = csi_similarity(_random_csi(rng), _random_csi(rng))
            assert -1.0 <= s <= 1.0

    def test_anticorrelated_vectors(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        b = np.array([4.0, 3.0, 2.0, 1.0])
        assert csi_similarity(a, b) == pytest.approx(-1.0)

    def test_1d_matches_manual_pearson(self):
        rng = np.random.default_rng(5)
        a = np.abs(rng.standard_normal(52)) + 0.1
        b = np.abs(rng.standard_normal(52)) + 0.1
        expected = np.corrcoef(a, b)[0, 1]
        assert csi_similarity(a, b) == pytest.approx(expected)

    def test_flat_profiles_treated_as_identical(self):
        flat = np.ones(52)
        assert csi_similarity(flat, 2 * flat) == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            csi_similarity(np.ones(52), np.ones(50))

    def test_bad_ndim_rejected_with_reshape_hint(self):
        with pytest.raises(ValueError, match=r"reshape.*\(K, -1\)"):
            csi_similarity(np.ones((2, 2, 2, 2)), np.ones((2, 2, 2, 2)))

    def test_two_d_matches_three_d(self):
        rng = np.random.default_rng(42)
        a = rng.standard_normal((16, 2, 2)) + 1j * rng.standard_normal((16, 2, 2))
        b = rng.standard_normal((16, 2, 2)) + 1j * rng.standard_normal((16, 2, 2))
        flat = csi_similarity(a.reshape(16, -1), b.reshape(16, -1))
        assert flat == pytest.approx(csi_similarity(a, b))

    def test_two_d_single_pair_matches_one_d(self):
        rng = np.random.default_rng(43)
        a = rng.standard_normal(32)
        b = rng.standard_normal(32)
        assert csi_similarity(a[:, None], b[:, None]) == pytest.approx(csi_similarity(a, b))

    def test_two_d_empty_pairs_rejected(self):
        with pytest.raises(ValueError):
            csi_similarity(np.ones((4, 0)), np.ones((4, 0)))


class TestStreamAndSeries:
    def test_stream_yields_n_minus_one(self):
        rng = np.random.default_rng(6)
        samples = [_random_csi(rng) for _ in range(5)]
        values = list(csi_similarity_stream(samples))
        assert len(values) == 4

    def test_series_matches_pairwise(self):
        rng = np.random.default_rng(7)
        h = rng.standard_normal((6, 52, 3, 2)) + 1j * rng.standard_normal((6, 52, 3, 2))
        series = csi_similarity_series(h, lag=2)
        assert len(series) == 4
        manual = csi_similarity(h[0], h[2])
        assert series[0] == pytest.approx(manual)

    def test_series_short_trace(self):
        h = np.ones((2, 52, 1, 1), dtype=complex)
        series = csi_similarity_series(h, lag=5)
        assert series.shape == (0,)  # documented: same 1-D shape as results
        assert len(np.concatenate([series, np.ones(3)])) == 3

    def test_series_invalid_lag(self):
        h = np.ones((4, 52, 1, 1), dtype=complex)
        with pytest.raises(ValueError):
            csi_similarity_series(h, lag=0)

    def test_timescale_on_static_trace(self, static_trace):
        curve = similarity_timescale(static_trace.h, static_trace.dt, (0.05, 0.5, 2.0))
        # Static channel: similarity stays high at every lag.
        assert all(v > 0.97 for v in curve.values())

    def test_walking_decorrelates_faster_than_static(self, static_trace, walking_trace):
        lag = 10
        static = np.mean(csi_similarity_series(static_trace.h, lag=lag))
        walking = np.mean(csi_similarity_series(walking_trace.h, lag=lag))
        assert static > 0.97
        assert walking < 0.7
