"""The streaming ingestion service: router, queues, backpressure, eviction.

The heart of the suite is the equivalence contract: a trace streamed
through :class:`repro.stream.StreamRouter` produces **bit-identical**
estimates to the batch :class:`repro.sim.BatchedSensingSession` run on
the same observations.  Around it: queue semantics, every backpressure
policy, idle eviction/revival, late/unknown rejection, and the telemetry
accounting that keeps all of those decisions visible.

Checkpoint/resume has its own module (``test_stream_checkpoint.py``).
"""

import numpy as np
import pytest

from repro.core.batched import BatchedMobilityClassifier
from repro.core.hints import Heading, MobilityMode
from repro.sim import BatchedSensingSession, SimulationEngine, TimeGrid
from repro.stream import (
    BACKPRESSURE_POLICIES,
    FleetSpec,
    Observation,
    SessionQueue,
    SimulatedSource,
    StreamConfig,
    StreamRouter,
    csi_observation,
    merge_sources,
    tof_observation,
)
from repro.telemetry.recorder import TelemetryRecorder


def counter_total(recorder, name, client=None):
    if client is not None:
        return recorder.metrics.counter(name, client=client).value
    from repro.telemetry.metrics import CounterMetric

    return sum(
        m.value
        for m in recorder.metrics.metrics()
        if isinstance(m, CounterMetric) and m.name == name
    )


def estimates_equal(a, b):
    """Deep equality of two results dicts (estimate streams per client)."""
    if set(a) != set(b):
        return False
    for label in a:
        if len(a[label]) != len(b[label]):
            return False
        for x, y in zip(a[label], b[label]):
            if x.to_dict() != y.to_dict():
                return False
    return True


def drive(router, observations, config, assert_accepted=True):
    """The service loop: offer each observation, advance behind arrivals."""
    for observation in observations:
        accepted = router.offer(observation)
        if assert_accepted:
            assert accepted, f"rejected {observation}"
        router.advance(observation.time_s - config.dt_s)
    router.advance(config.start_s + (config.horizon_steps - 1) * config.dt_s)
    return router.results()


class TestObservation:
    def test_kinds_validated(self):
        with pytest.raises(ValueError, match="kind"):
            Observation("c", 0.0, "rssi", 1.0)

    def test_helpers(self):
        csi = csi_observation("c", 1.5, np.ones(4))
        tof = tof_observation("c", 1.5, 200.0)
        assert csi.kind == "csi" and tof.kind == "tof"
        assert csi.client == tof.client == "c"
        assert tof.payload == 200.0

    def test_frozen(self):
        observation = tof_observation("c", 0.0, 1.0)
        with pytest.raises(AttributeError):
            observation.time_s = 2.0


class TestSessionQueue:
    def test_pop_tof_due_drains_all_due_in_order(self):
        queue = SessionQueue(capacity=8)
        for t in (0.1, 0.2, 0.3, 0.7):
            queue.push_tof(t, 100.0 + t)
        times, values = queue.pop_tof_due(0.5)
        assert list(times) == [0.1, 0.2, 0.3]
        assert list(values) == [100.1, 100.2, 100.3]
        assert len(queue) == 1  # the 0.7 reading stays queued

    def test_pop_csi_due_consumes_one_oldest(self):
        queue = SessionQueue(capacity=8)
        queue.push_csi(0.1, np.full(4, 1.0))
        queue.push_csi(0.2, np.full(4, 2.0))
        first = queue.pop_csi_due(0.5)
        assert first is not None and float(first[0]) == 1.0
        second = queue.pop_csi_due(0.5)
        assert second is not None and float(second[0]) == 2.0
        assert queue.pop_csi_due(0.5) is None

    def test_nothing_due_returns_none(self):
        queue = SessionQueue(capacity=8)
        queue.push_tof(1.0, 5.0)
        queue.push_csi(1.0, np.ones(2))
        assert queue.pop_tof_due(0.5) is None
        assert queue.pop_csi_due(0.5) is None
        assert len(queue) == 2

    def test_drop_oldest_crosses_lanes(self):
        queue = SessionQueue(capacity=4)
        queue.push_csi(0.3, np.ones(2))
        queue.push_tof(0.1, 5.0)
        queue.push_tof(0.4, 6.0)
        queue.drop_oldest()  # the 0.1 ToF reading is globally oldest
        times, values = queue.pop_tof_due(1.0)
        assert list(times) == [0.4]
        assert queue.pop_csi_due(1.0) is not None

    def test_capacity_and_clear(self):
        queue = SessionQueue(capacity=2)
        queue.push_tof(0.1, 1.0)
        assert not queue.full
        queue.push_csi(0.2, np.ones(2))
        assert queue.full
        queue.clear()
        assert len(queue) == 0 and not queue.full

    def test_state_roundtrip(self):
        queue = SessionQueue(capacity=8)
        queue.push_tof(0.1, 5.0)
        queue.push_csi(0.2, np.arange(4.0))
        restored = SessionQueue(capacity=8)
        restored.load_state_dict(queue.state_dict())
        assert len(restored) == 2
        times, values = restored.pop_tof_due(1.0)
        assert list(times) == [0.1] and list(values) == [5.0]
        payload = restored.pop_csi_due(1.0)
        assert np.array_equal(payload, np.arange(4.0))


class TestStreamConfig:
    def test_defaults_valid(self):
        config = StreamConfig()
        assert config.backpressure in BACKPRESSURE_POLICIES

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dt_s": 0.0},
            {"horizon_steps": 0},
            {"queue_capacity": 0},
            {"backpressure": "reject"},
            {"idle_timeout_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            StreamConfig(**kwargs)


class TestStreamVsBatchEquivalence:
    @pytest.fixture(scope="class")
    def source(self):
        return SimulatedSource(FleetSpec(n_clients=8, duration_s=20.0), seed=17)

    @pytest.fixture(scope="class")
    def batch_results(self, source):
        csi_by_client, tof_times, tof_readings = source.batch_inputs()
        classifier = BatchedMobilityClassifier(source.labels)
        spec = source.spec
        engine = SimulationEngine(TimeGrid.regular(0.0, spec.csi_period_s, spec.n_steps))
        engine.add(
            BatchedSensingSession(classifier, csi_by_client, tof_times, tof_readings)
        )
        return engine.run()

    def config(self, source):
        return StreamConfig(
            dt_s=source.spec.csi_period_s,
            horizon_steps=source.spec.n_steps,
            queue_capacity=256,
        )

    def test_streaming_is_bit_identical_to_batch(self, source, batch_results):
        config = self.config(source)
        router = StreamRouter(BatchedMobilityClassifier(source.labels), config=config)
        stream_results = drive(router, source, config)
        assert estimates_equal(batch_results, stream_results)

    def test_walking_and_static_clients_classify_as_expected(self, batch_results):
        walking = batch_results["client-0"]
        static = batch_results["client-1"]
        assert MobilityMode.MACRO in {e.mode for e in walking}
        assert {e.mode for e in static} == {MobilityMode.STATIC}

    def test_cross_client_arrival_order_within_a_step_is_irrelevant(
        self, source, batch_results
    ):
        """Interleaving across clients may arrive in any order inside one
        step window; only each client's own stream must stay ordered."""
        rng = np.random.default_rng(3)
        observations = list(source)
        shuffled = []
        bucket = []
        dt = source.spec.csi_period_s

        def flush():
            by_client = {}
            for observation in bucket:
                by_client.setdefault(observation.client, []).append(observation)
            order = list(by_client)
            rng.shuffle(order)
            for client in order:
                shuffled.extend(by_client[client])

        current = 0
        for observation in observations:
            window = int(observation.time_s // dt)
            if window != current:
                flush()
                bucket = []
                current = window
            bucket.append(observation)
        flush()
        assert len(shuffled) == len(observations)

        config = self.config(source)
        router = StreamRouter(BatchedMobilityClassifier(source.labels), config=config)
        # Advance only at window boundaries so reordering stays legal.
        for observation in shuffled:
            assert router.offer(observation)
            router.advance(observation.time_s - dt)
        router.advance(config.start_s + (config.horizon_steps - 1) * config.dt_s)
        assert estimates_equal(batch_results, router.results())

    def test_on_estimate_callback_streams_the_same_estimates(self, source, batch_results):
        config = self.config(source)
        live = {label: [] for label in source.labels}
        router = StreamRouter(
            BatchedMobilityClassifier(source.labels),
            config=config,
            on_estimate=lambda client, t, estimate: live[client].append(estimate),
        )
        results = drive(router, source, config)
        assert estimates_equal(results, live)
        assert estimates_equal(batch_results, live)

    def test_merge_sources_recovers_one_interleaved_stream(self, source):
        observations = list(source)
        per_client = {label: [] for label in source.labels}
        for observation in observations:
            per_client[observation.client].append(observation)
        merged = list(merge_sources([iter(v) for v in per_client.values()]))
        assert len(merged) == len(observations)
        assert all(
            merged[i].time_s <= merged[i + 1].time_s for i in range(len(merged) - 1)
        )


def make_router(policy="block", queue_capacity=2, recorder=None, **kwargs):
    recorder = recorder if recorder is not None else TelemetryRecorder()
    classifier = BatchedMobilityClassifier(["a", "b"])
    config = StreamConfig(
        dt_s=0.5,
        horizon_steps=100,
        queue_capacity=queue_capacity,
        backpressure=policy,
        **kwargs,
    )
    return StreamRouter(classifier, config=config, recorder=recorder), recorder, config


class TestBackpressure:
    def test_block_refuses_and_counts(self):
        router, recorder, _ = make_router("block")
        assert router.offer(tof_observation("a", 0.1, 200.0))
        assert router.offer(tof_observation("a", 0.12, 200.1))
        assert not router.offer(tof_observation("a", 0.14, 200.2))
        assert counter_total(recorder, "stream.blocked", client="a") == 1.0
        assert counter_total(recorder, "stream.accepted", client="a") == 2.0
        assert router.backlog == 2

    def test_block_clears_after_advance(self):
        router, _, _ = make_router("block")
        router.offer(tof_observation("a", 0.1, 200.0))
        router.offer(tof_observation("a", 0.12, 200.1))
        assert not router.offer(tof_observation("a", 0.6, 200.2))
        router.advance(0.5)  # drains everything due at/before 0.5
        assert router.offer(tof_observation("a", 0.6, 200.2))

    def test_drop_oldest_accepts_with_bounded_staleness(self):
        router, recorder, _ = make_router("drop_oldest")
        for t in (0.1, 0.12, 0.14):
            assert router.offer(tof_observation("a", t, 200.0))
        assert counter_total(recorder, "stream.dropped", client="a") == 1.0
        assert router.backlog == 2

    def test_shed_session_isolates_the_overloaded_client(self):
        router, recorder, _ = make_router("shed_session")
        assert router.offer(tof_observation("a", 0.1, 200.0))
        assert router.offer(tof_observation("a", 0.12, 200.1))
        assert not router.offer(tof_observation("a", 0.14, 200.2))  # sheds
        assert not router.offer(tof_observation("a", 0.2, 200.3))  # refused
        assert counter_total(recorder, "stream.shed_sessions") == 1.0
        assert counter_total(recorder, "stream.shed", client="a") == 2.0
        assert router.n_active_sessions == 1
        # The healthy session is untouched.
        assert router.offer(tof_observation("b", 0.2, 199.0))

    def test_shed_pushes_safe_default_hint(self):
        hints = []
        classifier = BatchedMobilityClassifier(["a", "b"])
        config = StreamConfig(
            dt_s=0.5, horizon_steps=10, queue_capacity=1, backpressure="shed_session"
        )
        router = StreamRouter(
            classifier,
            config=config,
            on_estimate=lambda client, t, estimate: hints.append((client, estimate)),
        )
        router.offer(tof_observation("a", 0.1, 200.0))
        router.offer(tof_observation("a", 0.2, 200.1))
        assert len(hints) == 1
        client, hint = hints[0]
        assert client == "a"
        assert hint.mode is MobilityMode.STATIC
        assert hint.heading is Heading.NONE
        assert not hint.tof_window_full


class TestRejections:
    def test_unknown_client_counted(self):
        router, recorder, _ = make_router()
        assert not router.offer(tof_observation("nobody", 0.1, 1.0))
        assert counter_total(recorder, "stream.unknown_client") == 1.0

    def test_late_observation_refused_after_its_step_ran(self):
        router, recorder, _ = make_router(queue_capacity=16)
        router.advance(0.6)  # steps at 0.0 and 0.5 have run
        assert not router.offer(csi_observation("a", 0.4, np.ones(4)))
        assert not router.offer(csi_observation("a", 0.5, np.ones(4)))
        assert router.offer(csi_observation("a", 0.51, np.ones(4)))
        assert counter_total(recorder, "stream.late", client="a") == 2.0

    def test_nothing_is_late_before_the_first_step(self):
        router, recorder, _ = make_router(queue_capacity=16)
        assert router.offer(csi_observation("a", 0.0, np.ones(4)))
        assert counter_total(recorder, "stream.late") == 0.0


class TestEvictionAndRevival:
    def test_idle_session_evicted_with_safe_hint(self):
        hints = []
        recorder = TelemetryRecorder()
        classifier = BatchedMobilityClassifier(["a", "b"])
        config = StreamConfig(
            dt_s=0.5, horizon_steps=100, queue_capacity=16, idle_timeout_s=1.0
        )
        router = StreamRouter(
            classifier,
            config=config,
            recorder=recorder,
            on_estimate=lambda client, t, e: hints.append((client, t, e)),
        )
        assert router.offer(csi_observation("a", 0.0, np.ones(4)))
        router.advance(3.0)
        assert router.evicted.all()
        assert router.n_active_sessions == 0
        assert counter_total(recorder, "stream.evicted") == 2.0
        evicted_hints = [h for h in hints if h[2].mode is MobilityMode.STATIC]
        assert {h[0] for h in evicted_hints} == {"a", "b"}

    def test_fresh_offer_revives_cold(self):
        router, recorder, _ = make_router(queue_capacity=16, idle_timeout_s=1.0)
        router.offer(csi_observation("a", 0.0, np.ones(4)))
        router.advance(3.0)
        assert router.evicted[0]
        assert router.offer(csi_observation("a", 3.2, np.ones(4)))
        assert not router.evicted[0]
        assert counter_total(recorder, "stream.revived", client="a") == 1.0

    def test_backlogged_session_is_not_idle(self):
        router, recorder, _ = make_router(queue_capacity=16, idle_timeout_s=1.0)
        # Queued observation far in the future: activity is old but the
        # queue holds work, so the session must not be evicted.
        assert router.offer(csi_observation("a", 5.0, np.ones(4)))
        router.advance(3.0)
        assert not router.evicted[0]
        assert router.evicted[1]  # the genuinely idle one goes

    def test_no_timeout_means_no_eviction(self):
        router, recorder, _ = make_router(queue_capacity=16)
        router.advance(30.0)
        assert not router.evicted.any()
        assert counter_total(recorder, "stream.evicted") == 0.0


class TestLifecycle:
    def test_advance_past_horizon_raises(self):
        router, _, config = make_router(queue_capacity=16)
        end_s = config.start_s + (config.horizon_steps - 1) * config.dt_s
        router.advance(end_s)  # exactly the horizon: fine
        with pytest.raises(RuntimeError, match="horizon"):
            router.advance(end_s + 1.0)

    def test_close_finalizes_and_refuses_further_stepping(self):
        router, _, _ = make_router(queue_capacity=16)
        router.offer(csi_observation("a", 0.0, np.ones(4)))
        router.advance(1.0)
        results = router.close()
        assert set(results) == {"a", "b"}
        with pytest.raises(RuntimeError, match="closed"):
            router.advance(2.0)
        with pytest.raises(RuntimeError, match="closed"):
            router.close()

    def test_clock_tracks_next_step(self):
        router, _, _ = make_router(queue_capacity=16)
        assert router.clock_s == 0.0
        router.advance(0.6)
        assert router.clock_s == 1.0

    def test_gauges_published_on_advance(self):
        router, recorder, _ = make_router(queue_capacity=16)
        router.offer(csi_observation("a", 5.0, np.ones(4)))
        router.advance(0.6)
        assert recorder.metrics.gauge("stream.backlog").value == 1.0
        assert recorder.metrics.gauge("stream.sessions_active").value == 2.0

    def test_null_recorder_counts_nothing(self):
        # The default recorder is the null one: the hot path must not
        # build metrics, and rejections still return False.
        classifier = BatchedMobilityClassifier(["a"])
        router = StreamRouter(
            classifier, config=StreamConfig(dt_s=0.5, horizon_steps=10, queue_capacity=1)
        )
        assert router.offer(tof_observation("a", 0.1, 1.0))
        assert not router.offer(tof_observation("a", 0.2, 2.0))


class TestReplaySource:
    """CSI Tool captures replayed through the streaming service."""

    def _write_log(self, tmp_path, timestamps_us, name="capture.dat"):
        from repro.io.csitool import CsiRecord, N_SUBCARRIERS, write_csitool_log

        rng = np.random.default_rng(7)
        records = []
        for t in timestamps_us:
            csi = np.round(rng.uniform(-100, 100, (N_SUBCARRIERS, 2, 3))) + 1j * np.round(
                rng.uniform(-100, 100, (N_SUBCARRIERS, 2, 3))
            )
            records.append(
                CsiRecord(
                    timestamp_low=t,
                    bfee_count=1,
                    n_rx=3,
                    n_tx=2,
                    rssi_a=40,
                    rssi_b=42,
                    rssi_c=38,
                    noise=-92,
                    agc=30,
                    antenna_sel=0b100100,
                    rate=0x1234,
                    csi=csi,
                )
            )
        path = tmp_path / name
        write_csitool_log(records, path)
        return path

    def test_replayed_capture_streams_through_the_router(self, tmp_path):
        from repro.io.stream import replay_source

        timestamps = [int(t * 1e6) for t in np.arange(0.0, 10.0, 0.5)]
        path = self._write_log(tmp_path, timestamps)
        observations = list(replay_source(path, client="a"))
        assert len(observations) == len(timestamps)
        assert all(o.kind == "csi" and o.client == "a" for o in observations)

        classifier = BatchedMobilityClassifier(["a"])
        config = StreamConfig(dt_s=0.5, horizon_steps=20, queue_capacity=64)
        router = StreamRouter(classifier, config=config)
        results = drive(router, observations, config)
        assert len(results["a"]) == 19  # first sample only seeds the baseline

    def test_nonmonotonic_records_are_skipped_and_counted(self, tmp_path):
        from repro.io.stream import replay_source

        timestamps = [0, 500_000, 400_000, 1_000_000]  # one out-of-order
        path = self._write_log(tmp_path, timestamps)
        recorder = TelemetryRecorder()
        observations = list(replay_source(path, client="a", recorder=recorder))
        assert len(observations) == 3
        assert counter_total(recorder, "io.csitool.nonmonotonic") == 1.0

    def test_rebase_to_service_clock(self, tmp_path):
        from repro.io.stream import replay_source

        # The capture's absolute clock is arbitrary: the stream is rebased
        # so the first record lands exactly at start_s on the service clock.
        path = self._write_log(tmp_path, [3_000_000, 3_500_000])
        observations = list(replay_source(path, client="a", start_s=100.0))
        assert observations[0].time_s == pytest.approx(100.0)
        assert observations[1].time_s == pytest.approx(100.5)


class TestFleetSpecAndSource:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FleetSpec(n_clients=0)
        with pytest.raises(ValueError):
            FleetSpec(duration_s=0.0)
        with pytest.raises(ValueError):
            FleetSpec(walking_every=0)

    def test_source_is_deterministic(self):
        a = [o.time_s for o in SimulatedSource(FleetSpec(n_clients=4), seed=5)]
        b = [o.time_s for o in SimulatedSource(FleetSpec(n_clients=4), seed=5)]
        assert a == b

    def test_observations_time_ordered(self):
        observations = list(SimulatedSource(FleetSpec(n_clients=4, duration_s=5.0)))
        times = [o.time_s for o in observations]
        assert times == sorted(times)
