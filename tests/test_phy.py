"""Unit tests for the PHY substrate: MCS table, error model, ToF, feedback."""

import numpy as np
import pytest

from repro.mac.timing import MacTiming
from repro.phy.csi_feedback import (
    CSIFeedbackConfig,
    feedback_airtime_s,
    feedback_bytes,
    feedback_overhead_fraction,
)
from repro.phy.error import ErrorModel, sinr_with_stale_estimate
from repro.phy.mcs import MCS_TABLE, atheros_usable_mcs, mcs_by_index, single_stream_mcs
from repro.phy.tof import ToFConfig, ToFSampler, tof_cycles_for_distance
from repro.util.units import SPEED_OF_LIGHT


class TestMcsTable:
    def test_sixteen_entries(self):
        assert len(MCS_TABLE) == 16
        assert {m.index for m in MCS_TABLE} == set(range(16))

    def test_standard_rates(self):
        assert mcs_by_index(7).rate_mbps(20e6) == 65.0
        assert mcs_by_index(7).rate_mbps(40e6) == 135.0
        assert mcs_by_index(15).rate_mbps(40e6) == 270.0

    def test_short_gi_factor(self):
        m = mcs_by_index(15)
        assert m.rate_mbps(40e6, short_gi=True) == pytest.approx(300.0)

    def test_two_stream_doubles_rate(self):
        for ss in range(8):
            assert mcs_by_index(ss + 8).rate_mbps(40e6) == pytest.approx(
                2 * mcs_by_index(ss).rate_mbps(40e6)
            )

    def test_min_snr_monotone_within_stream_group(self):
        one_stream = [mcs_by_index(i).min_snr_db for i in range(8)]
        two_stream = [mcs_by_index(i).min_snr_db for i in range(8, 16)]
        assert one_stream == sorted(one_stream)
        assert two_stream == sorted(two_stream)

    def test_atheros_ladder_rate_ordered(self):
        ladder = atheros_usable_mcs()
        rates = [mcs_by_index(i).rate_mbps(40e6) for i in ladder]
        assert rates == sorted(rates)

    def test_atheros_ladder_skips(self):
        ladder = set(atheros_usable_mcs())
        # Skips MCS 5-7 (1SS) and MCS 8 (2SS) per the paper.
        assert not {5, 6, 7, 8} & ladder

    def test_single_stream_ladder(self):
        assert single_stream_mcs() == (0, 1, 2, 3, 4, 5, 6, 7)

    def test_unknown_index(self):
        with pytest.raises(ValueError):
            mcs_by_index(16)


class TestErrorModel:
    def test_per_monotone_decreasing_in_snr(self):
        model = ErrorModel()
        snrs = np.arange(0.0, 35.0, 1.0)
        pers = [model.per(4, s) for s in snrs]
        assert all(b <= a + 1e-12 for a, b in zip(pers, pers[1:]))

    def test_anchor_point(self):
        model = ErrorModel()
        m = mcs_by_index(4)
        # At min_snr, PER ~ 10% for the 1000-byte reference length.
        assert model.per(m, m.min_snr_db, payload_bytes=1000) == pytest.approx(0.1, abs=0.02)

    def test_longer_packets_fail_more(self):
        model = ErrorModel()
        short = model.per(4, 15.0, payload_bytes=500)
        long = model.per(4, 15.0, payload_bytes=1500)
        assert long > short

    def test_two_stream_needs_more_snr(self):
        model = ErrorModel()
        assert model.per(11, 18.0) > model.per(4, 18.0) - 0.3  # 2SS penalised
        # With a well-conditioned channel the penalty is just the 3 dB split.
        good = model.per(11, 25.0, mimo_condition_db=0.0)
        bad = model.per(11, 25.0, mimo_condition_db=25.0)
        assert bad > good

    def test_per_bounds(self):
        model = ErrorModel()
        assert 0.0 < model.per(0, -20.0) <= 1.0
        assert model.per(0, 60.0) >= model.per_floor

    def test_best_mcs_increases_with_snr(self):
        model = ErrorModel()
        picks = [model.best_mcs(snr) for snr in (2.0, 10.0, 20.0, 32.0)]
        rates = [mcs_by_index(p).rate_mbps(40e6) for p in picks]
        assert rates == sorted(rates)
        assert picks[-1] == 15

    def test_best_mcs_respects_candidates(self):
        model = ErrorModel()
        pick = model.best_mcs(35.0, candidates=single_stream_mcs())
        assert pick == 7

    def test_expected_goodput_positive_and_bounded(self):
        model = ErrorModel()
        goodput = model.expected_goodput_mbps(25.0)
        assert 0.0 < goodput <= 270.0


class TestStaleness:
    def test_fresh_estimate_is_transparent(self):
        assert sinr_with_stale_estimate(20.0, 1.0) == pytest.approx(20.0)

    def test_stale_estimate_caps_sinr(self):
        fresh = sinr_with_stale_estimate(40.0, 1.0)
        stale = sinr_with_stale_estimate(40.0, 0.7)
        assert stale < fresh
        # The cap binds harder at high SNR.
        low = sinr_with_stale_estimate(5.0, 0.7)
        assert (40.0 - stale) > (5.0 - low)

    def test_pilot_tracking_softens(self):
        hard = sinr_with_stale_estimate(30.0, 0.8, pilot_tracking=0.0)
        soft = sinr_with_stale_estimate(30.0, 0.8, pilot_tracking=0.95)
        assert soft > hard

    def test_monotone_in_correlation(self):
        sinrs = [sinr_with_stale_estimate(30.0, rho) for rho in (0.0, 0.5, 0.9, 1.0)]
        assert sinrs == sorted(sinrs)


class TestToF:
    def test_cycles_proportional_to_distance(self):
        cfg = ToFConfig()
        near = tof_cycles_for_distance(10.0, cfg)
        far = tof_cycles_for_distance(20.0, cfg)
        expected = 2 * 10.0 / SPEED_OF_LIGHT * cfg.clock_hz
        assert far - near == pytest.approx(expected)

    def test_one_cycle_is_6_8m_roundtrip(self):
        cfg = ToFConfig()
        assert cfg.metres_per_cycle == pytest.approx(6.81, abs=0.02)

    def test_sampler_unbiased_up_to_outliers(self):
        cfg = ToFConfig(outlier_probability=0.0, quantize=False)
        sampler = ToFSampler(cfg, seed=1)
        readings = sampler.sample(np.full(5000, 15.0))
        assert np.mean(readings) == pytest.approx(tof_cycles_for_distance(15.0, cfg), abs=0.1)

    def test_outliers_are_late_only(self):
        clean_cfg = ToFConfig(outlier_probability=0.0, noise_std_cycles=0.0, quantize=False)
        noisy_cfg = ToFConfig(outlier_probability=0.5, noise_std_cycles=0.0, quantize=False)
        clean = tof_cycles_for_distance(15.0, clean_cfg)
        readings = ToFSampler(noisy_cfg, seed=2).sample(np.full(1000, 15.0))
        assert np.all(readings >= clean - 1e-9)
        assert np.max(readings) > clean + 1.0

    def test_quantisation(self):
        cfg = ToFConfig(quantize=True)
        sampler = ToFSampler(cfg, seed=3)
        readings = sampler.sample(np.full(100, 12.0))
        steps = readings / cfg.resolution_cycles
        assert np.allclose(steps, np.round(steps))

    def test_median_filter_recovers_trend(self):
        # Walking away at 1.2 m/s: per-second medians of noisy quantised
        # readings must still ramp.
        cfg = ToFConfig()
        sampler = ToFSampler(cfg, seed=4)
        t = np.arange(0.0, 8.0, 0.02)
        distances = 10.0 + 1.2 * t
        readings = sampler.sample(distances)
        medians = [np.median(readings[i : i + 50]) for i in range(0, len(readings) - 50, 50)]
        assert medians[-1] > medians[0]

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            ToFSampler(seed=5).sample(np.array([-1.0]))


class TestCsiFeedback:
    def test_report_size(self):
        cfg = CSIFeedbackConfig(n_subcarriers=52, n_tx=3, n_rx=1, bits_per_component=8)
        # 52*3*1 complex entries at 2 bytes each + 40 header = 352.
        assert feedback_bytes(cfg) == 40 + 52 * 3 * 2

    def test_airtime_includes_protocol_overheads(self):
        cfg = CSIFeedbackConfig()
        airtime = feedback_airtime_s(cfg)
        transmit_only = feedback_bytes(cfg) * 8 / (cfg.feedback_rate_mbps * 1e6)
        assert airtime > transmit_only

    def test_overhead_fraction(self):
        cfg = CSIFeedbackConfig()
        fast = feedback_overhead_fraction(0.020, cfg)
        slow = feedback_overhead_fraction(2.0, cfg)
        assert fast > slow
        assert 0.0 < slow < fast <= 1.0

    def test_more_antennas_bigger_report(self):
        small = feedback_bytes(CSIFeedbackConfig(n_tx=2))
        large = feedback_bytes(CSIFeedbackConfig(n_tx=4))
        assert large > small

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            feedback_overhead_fraction(0.0)

    def test_timing_defaults_sane(self):
        timing = MacTiming()
        assert timing.sifs_s < timing.difs_s
        assert timing.frame_overhead_s() > 100e-6
