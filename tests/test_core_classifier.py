"""Unit tests for the Fig. 5 classifier state machine."""

import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig, MobilityClassifier
from repro.core.hints import MobilityEstimate
from repro.core.policy import default_policy_table, mobility_oblivious_policy
from repro.core.tof_trend import ToFTrendConfig
from repro.mobility.modes import Heading, MobilityMode
from repro.telemetry import TelemetryRecorder


def _flat_csi(level=1.0, k=52, jitter=0.0, rng=None):
    base = np.linspace(1.0, 2.0, k) * level
    if jitter and rng is not None:
        base = base + rng.normal(0.0, jitter, k)
    return base


def _random_csi(rng, k=52):
    return np.abs(rng.standard_normal(k)) + 0.05


class TestThresholds:
    def test_stable_channel_classified_static(self):
        clf = MobilityClassifier()
        rng = np.random.default_rng(0)
        estimate = None
        for i in range(6):
            estimate = clf.push_csi(0.5 * i, _flat_csi(jitter=0.001, rng=rng))
        assert estimate.mode == MobilityMode.STATIC
        assert estimate.csi_similarity > 0.98

    def test_fully_random_channel_classified_device(self):
        clf = MobilityClassifier()
        rng = np.random.default_rng(1)
        estimate = None
        for i in range(6):
            estimate = clf.push_csi(0.5 * i, _random_csi(rng))
        assert estimate.mode in (MobilityMode.MICRO, MobilityMode.MACRO)

    def test_intermediate_similarity_is_environmental(self):
        clf = MobilityClassifier()
        rng = np.random.default_rng(2)
        base = _flat_csi()
        estimate = None
        for i in range(8):
            # Perturb a subset of subcarriers: partial change.
            sample = base.copy()
            idx = rng.choice(52, size=10, replace=False)
            sample[idx] += rng.normal(0.0, 0.35, 10)
            estimate = clf.push_csi(0.5 * i, sample)
        assert estimate.mode == MobilityMode.ENVIRONMENTAL

    def test_first_sample_yields_no_estimate(self):
        clf = MobilityClassifier()
        assert clf.push_csi(0.0, _flat_csi()) is None
        assert clf.estimate is None


class TestToFGating:
    def test_tof_starts_only_on_device_mobility(self):
        clf = MobilityClassifier()
        rng = np.random.default_rng(3)
        clf.push_csi(0.0, _flat_csi(jitter=0.001, rng=rng))
        clf.push_csi(0.5, _flat_csi(jitter=0.001, rng=rng))
        assert not clf.wants_tof  # static: no ToF measurement
        for i in range(4):
            clf.push_csi(1.0 + 0.5 * i, _random_csi(rng))
        assert clf.wants_tof

    def test_tof_stops_when_mobility_ends(self):
        clf = MobilityClassifier(ClassifierConfig(similarity_smoothing_window=1))
        rng = np.random.default_rng(4)
        for i in range(4):
            clf.push_csi(0.5 * i, _random_csi(rng))
        assert clf.wants_tof
        stable = _flat_csi()
        for i in range(4):
            clf.push_csi(2.0 + 0.5 * i, stable)
        assert not clf.wants_tof

    def test_tof_ignored_while_inactive(self):
        clf = MobilityClassifier()
        clf.push_tof(0.0, 100.0)  # must not crash nor affect state
        assert clf.estimate is None

    def test_macro_detected_with_trending_tof(self):
        clf = MobilityClassifier(ClassifierConfig(similarity_smoothing_window=1))
        rng = np.random.default_rng(5)
        # Enter device mobility.
        clf.push_csi(0.0, _random_csi(rng))
        clf.push_csi(0.5, _random_csi(rng))
        assert clf.wants_tof
        # Feed 5 seconds of increasing ToF (50 samples/s).
        t = 0.5
        for second in range(5):
            for _ in range(50):
                t += 0.02
                clf.push_tof(t, 100.0 + second)
            estimate = clf.push_csi(t, _random_csi(rng))
        assert estimate.mode == MobilityMode.MACRO
        assert estimate.heading == Heading.AWAY

    def test_micro_when_tof_flat(self):
        clf = MobilityClassifier(ClassifierConfig(similarity_smoothing_window=1))
        rng = np.random.default_rng(6)
        clf.push_csi(0.0, _random_csi(rng))
        t = 0.0
        for second in range(5):
            for _ in range(50):
                t += 0.02
                clf.push_tof(t, 100.0 + rng.normal(0, 0.2))
            estimate = clf.push_csi(t, _random_csi(rng))
        assert estimate.mode == MobilityMode.MICRO

    def test_reset_forgets_everything(self):
        clf = MobilityClassifier()
        rng = np.random.default_rng(7)
        for i in range(4):
            clf.push_csi(0.5 * i, _random_csi(rng))
        clf.reset()
        assert clf.estimate is None
        assert not clf.wants_tof
        assert clf.history == []

    def test_history_grows_per_decision(self):
        clf = MobilityClassifier()
        rng = np.random.default_rng(8)
        for i in range(5):
            clf.push_csi(0.5 * i, _random_csi(rng))
        assert len(clf.history) == 4


class TestToFGatingAcrossResets:
    """Fig. 5: leaving device mobility must fully drop ToF state, including
    any half-accumulated median batch."""

    def _enter_device_mobility(self, clf, rng, t0=0.0):
        t = t0
        for _ in range(2):
            clf.push_csi(t, _random_csi(rng))
            t += 0.5
        assert clf.wants_tof
        return t

    def test_stale_half_batch_does_not_leak_across_episodes(self):
        clf = MobilityClassifier(ClassifierConfig(similarity_smoothing_window=1))
        rng = np.random.default_rng(21)
        t = self._enter_device_mobility(clf, rng)
        # Half a median batch (25 of 50 samples) at a low ToF value...
        for i in range(25):
            clf.push_tof(t + 0.02 * i, 100.0)
        # ...then the client goes static: ToF stops, the window resets.
        stable = _flat_csi()
        for _ in range(4):
            t += 0.5
            clf.push_csi(t, stable)
        assert not clf.wants_tof
        # A new mobility episode at a much higher ToF value.
        t = self._enter_device_mobility(clf, rng, t0=t + 0.5)
        for i in range(50):
            clf.push_tof(t + 0.02 * i, 200.0)
        # Exactly one full batch: were the 25 stale samples still pending,
        # the median would close early and mix 100s with 200s (150.0).
        assert clf._tof_detector.medians == [200.0]

    def test_explicit_reset_drops_pending_tof(self):
        clf = MobilityClassifier(ClassifierConfig(similarity_smoothing_window=1))
        rng = np.random.default_rng(22)
        t = self._enter_device_mobility(clf, rng)
        for i in range(25):
            clf.push_tof(t + 0.02 * i, 100.0)
        clf.reset()
        t = self._enter_device_mobility(clf, rng, t0=t + 10.0)
        for i in range(50):
            clf.push_tof(t + 0.02 * i, 200.0)
        assert clf._tof_detector.medians == [200.0]


class TestDegradedInput:
    """Gap handling and invalid-sample hygiene on both sensing inputs."""

    def _activate(self, clf, rng, t0=0.0, step=0.5):
        t = t0
        for _ in range(2):
            clf.push_csi(t, _random_csi(rng))
            t += step
        assert clf.wants_tof
        return t

    def test_csi_gap_at_limit_still_compared(self):
        clf = MobilityClassifier(
            ClassifierConfig(max_csi_gap_s=1.0, similarity_smoothing_window=1)
        )
        stable = _flat_csi()
        clf.push_csi(0.0, stable)
        estimate = clf.push_csi(1.0, stable)  # exactly the limit: no gap
        assert estimate is not None and estimate.mode == MobilityMode.STATIC

    def test_csi_gap_beyond_limit_restarts_stream(self):
        clf = MobilityClassifier(
            ClassifierConfig(max_csi_gap_s=1.0, similarity_smoothing_window=1)
        )
        rec = TelemetryRecorder()
        clf.recorder = rec
        stable = _flat_csi()
        clf.push_csi(0.0, stable)
        clf.push_csi(0.5, stable)
        rng = np.random.default_rng(23)
        # A traffic lull, then a completely different channel.  Without gap
        # awareness this would smell like device mobility; with it the
        # stream restarts and the first post-gap sample makes no decision.
        assert clf.push_csi(5.0, _random_csi(rng)) is None
        assert clf.estimate.mode == MobilityMode.STATIC  # unchanged
        assert rec.metrics.counter("classifier.csi_gaps").value == 1
        (event,) = rec.tracer.of_kind("sensing_gap")
        assert event.fields["reason"] == "sampling_gap"
        assert event.fields["gap_s"] == pytest.approx(4.5)

    def test_csi_gap_disabled_by_default(self):
        clf = MobilityClassifier(ClassifierConfig(similarity_smoothing_window=1))
        stable = _flat_csi()
        clf.push_csi(0.0, stable)
        estimate = clf.push_csi(60.0, stable)  # cadence-blind legacy path
        assert estimate is not None

    def test_non_finite_csi_discarded_and_counted(self):
        clf = MobilityClassifier(ClassifierConfig(similarity_smoothing_window=1))
        rec = TelemetryRecorder()
        clf.recorder = rec
        stable = _flat_csi()
        clf.push_csi(0.0, stable)
        bad = stable.copy()
        bad[7] = np.nan
        assert clf.push_csi(0.5, bad) is None
        assert rec.metrics.counter("classifier.invalid_samples").value == 1
        # The corrupted sample must not become the comparison baseline.
        estimate = clf.push_csi(1.0, stable)
        assert estimate.mode == MobilityMode.STATIC
        assert np.isfinite(estimate.csi_similarity)

    def test_non_finite_tof_discarded_and_counted(self):
        clf = MobilityClassifier(ClassifierConfig(similarity_smoothing_window=1))
        rec = TelemetryRecorder()
        clf.recorder = rec
        rng = np.random.default_rng(24)
        t = self._activate(clf, rng)
        for i in range(50):
            clf.push_tof(t + 0.02 * i, np.nan if i % 2 else 100.0)
        assert rec.metrics.counter("classifier.invalid_samples").value == 25
        # Only the 25 finite readings entered the (count-based) batch.
        assert clf._tof_detector.medians == []

    def test_tof_gap_surfaces_through_telemetry(self):
        cfg = ClassifierConfig(
            similarity_smoothing_window=1,
            tof=ToFTrendConfig(time_aware=True, min_median_samples=10),
        )
        clf = MobilityClassifier(cfg)
        rec = TelemetryRecorder()
        clf.recorder = rec
        rng = np.random.default_rng(25)
        t = self._activate(clf, rng)
        for i in range(50):
            clf.push_tof(t + 0.02 * i, 100.0)
        # Three readings in the next second: sparse -> gap on close.
        clf.push_tof(t + 1.1, 101.0)
        clf.push_tof(t + 1.5, 101.0)
        clf.push_tof(t + 1.9, 101.0)
        clf.push_tof(t + 2.05, 102.0)  # closes the sparse period
        assert rec.metrics.counter("classifier.tof_gaps").value == 1
        assert rec.metrics.counter("tof.medians_discarded").value == 1
        events = rec.tracer.of_kind("sensing_gap")
        assert any(e.fields["reason"] == "sparse_period" for e in events)


class TestStretchedWindowBug:
    """The acceptance scenario: >=20% ToF loss over a macro-mobility trace.

    A count-based median filter silently stretches each "one second" batch
    over the longer wall-clock span the surviving samples cover, so a slow
    drift that should stay below ``min_net_cycles`` accumulates into a fake
    macro heading.  The time-aware detector keeps wall-clock windows honest.
    """

    def _degraded_run(self, config, duration_s=30.0, drift_per_s=0.15, drop=0.5):
        clf = MobilityClassifier(config)
        csi_rng = np.random.default_rng(31)
        drop_rng = np.random.default_rng(32)
        modes = []
        t = 0.0
        while t < duration_s:
            estimate = clf.push_csi(t, _random_csi(csi_rng))
            if estimate is not None:
                modes.append(estimate.mode)
            for i in range(25):  # 20 ms ToF cadence between CSI samples
                ts = t + 0.02 * i
                if drop_rng.random() >= drop:
                    clf.push_tof(ts, 100.0 + drift_per_s * ts)
            t += 0.5
        return modes

    def test_count_based_reports_false_macro_under_drops(self):
        """Documents the bug: the legacy config fakes a MACRO heading."""
        modes = self._degraded_run(ClassifierConfig(similarity_smoothing_window=1))
        assert MobilityMode.MACRO in modes

    def test_time_aware_rejects_stretched_window(self):
        cfg = ClassifierConfig(
            similarity_smoothing_window=1,
            tof=ToFTrendConfig(time_aware=True, min_median_samples=10),
        )
        modes = self._degraded_run(cfg)
        assert MobilityMode.MACRO not in modes
        assert MobilityMode.MICRO in modes  # device mobility still seen


class TestConfigValidation:
    def test_threshold_order_enforced(self):
        with pytest.raises(ValueError):
            ClassifierConfig(threshold_static=0.5, threshold_environmental=0.9)

    def test_positive_period(self):
        with pytest.raises(ValueError):
            ClassifierConfig(csi_sampling_period_s=0.0)

    def test_max_csi_gap_must_be_positive(self):
        with pytest.raises(ValueError, match="max CSI gap"):
            ClassifierConfig(max_csi_gap_s=0.0)
        assert ClassifierConfig(max_csi_gap_s=None).max_csi_gap_s is None


class TestHints:
    def test_heading_requires_macro(self):
        with pytest.raises(ValueError):
            MobilityEstimate(time_s=0.0, mode=MobilityMode.MICRO, heading=Heading.AWAY)

    def test_moving_flags(self):
        away = MobilityEstimate(0.0, MobilityMode.MACRO, Heading.AWAY)
        towards = MobilityEstimate(0.0, MobilityMode.MACRO, Heading.TOWARDS)
        static = MobilityEstimate(0.0, MobilityMode.STATIC)
        assert away.moving_away and not away.moving_towards
        assert towards.moving_towards and not towards.moving_away
        assert not static.moving_away and not static.is_device_mobility


class TestPolicyTable:
    def test_all_states_present(self):
        table = default_policy_table()
        for mode in MobilityMode:
            policy = table.lookup(mode)
            assert policy.aggregation_limit_ms > 0

    def test_macro_without_heading_uses_away_column(self):
        table = default_policy_table()
        assert table.lookup(MobilityMode.MACRO) is table.lookup(
            MobilityMode.MACRO, Heading.AWAY
        )

    def test_paper_aggregation_values(self):
        table = default_policy_table()
        assert table.lookup(MobilityMode.STATIC).aggregation_limit_ms == 8.0
        assert table.lookup(MobilityMode.ENVIRONMENTAL).aggregation_limit_ms == 8.0
        assert table.lookup(MobilityMode.MICRO).aggregation_limit_ms == 2.0
        assert table.lookup(MobilityMode.MACRO).aggregation_limit_ms == 2.0

    def test_static_keeps_longest_history(self):
        table = default_policy_table()
        alphas = {mode: table.lookup(mode).per_smoothing_factor for mode in MobilityMode}
        assert alphas[MobilityMode.STATIC] == min(alphas.values())

    def test_only_away_triggers_roaming(self):
        table = default_policy_table()
        assert table.lookup(MobilityMode.MACRO, Heading.AWAY).encourage_roaming
        assert not table.lookup(MobilityMode.MACRO, Heading.TOWARDS).encourage_roaming
        assert not table.lookup(MobilityMode.STATIC).encourage_roaming

    def test_feedback_periods_shrink_with_mobility(self):
        table = default_policy_table()
        static = table.lookup(MobilityMode.STATIC).su_bf_feedback_ms
        macro = table.lookup(MobilityMode.MACRO, Heading.AWAY).su_bf_feedback_ms
        assert macro < static

    def test_oblivious_defaults(self):
        policy = mobility_oblivious_policy()
        assert policy.per_smoothing_factor == pytest.approx(1 / 8)
        assert policy.aggregation_limit_ms == 4.0
        assert policy.rate_retries == 0
