"""Unit tests for the Fig. 5 classifier state machine."""

import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig, MobilityClassifier
from repro.core.hints import MobilityEstimate
from repro.core.policy import default_policy_table, mobility_oblivious_policy
from repro.mobility.modes import Heading, MobilityMode


def _flat_csi(level=1.0, k=52, jitter=0.0, rng=None):
    base = np.linspace(1.0, 2.0, k) * level
    if jitter and rng is not None:
        base = base + rng.normal(0.0, jitter, k)
    return base


def _random_csi(rng, k=52):
    return np.abs(rng.standard_normal(k)) + 0.05


class TestThresholds:
    def test_stable_channel_classified_static(self):
        clf = MobilityClassifier()
        rng = np.random.default_rng(0)
        estimate = None
        for i in range(6):
            estimate = clf.push_csi(0.5 * i, _flat_csi(jitter=0.001, rng=rng))
        assert estimate.mode == MobilityMode.STATIC
        assert estimate.csi_similarity > 0.98

    def test_fully_random_channel_classified_device(self):
        clf = MobilityClassifier()
        rng = np.random.default_rng(1)
        estimate = None
        for i in range(6):
            estimate = clf.push_csi(0.5 * i, _random_csi(rng))
        assert estimate.mode in (MobilityMode.MICRO, MobilityMode.MACRO)

    def test_intermediate_similarity_is_environmental(self):
        clf = MobilityClassifier()
        rng = np.random.default_rng(2)
        base = _flat_csi()
        estimate = None
        for i in range(8):
            # Perturb a subset of subcarriers: partial change.
            sample = base.copy()
            idx = rng.choice(52, size=10, replace=False)
            sample[idx] += rng.normal(0.0, 0.35, 10)
            estimate = clf.push_csi(0.5 * i, sample)
        assert estimate.mode == MobilityMode.ENVIRONMENTAL

    def test_first_sample_yields_no_estimate(self):
        clf = MobilityClassifier()
        assert clf.push_csi(0.0, _flat_csi()) is None
        assert clf.estimate is None


class TestToFGating:
    def test_tof_starts_only_on_device_mobility(self):
        clf = MobilityClassifier()
        rng = np.random.default_rng(3)
        clf.push_csi(0.0, _flat_csi(jitter=0.001, rng=rng))
        clf.push_csi(0.5, _flat_csi(jitter=0.001, rng=rng))
        assert not clf.wants_tof  # static: no ToF measurement
        for i in range(4):
            clf.push_csi(1.0 + 0.5 * i, _random_csi(rng))
        assert clf.wants_tof

    def test_tof_stops_when_mobility_ends(self):
        clf = MobilityClassifier(ClassifierConfig(similarity_smoothing_window=1))
        rng = np.random.default_rng(4)
        for i in range(4):
            clf.push_csi(0.5 * i, _random_csi(rng))
        assert clf.wants_tof
        stable = _flat_csi()
        for i in range(4):
            clf.push_csi(2.0 + 0.5 * i, stable)
        assert not clf.wants_tof

    def test_tof_ignored_while_inactive(self):
        clf = MobilityClassifier()
        clf.push_tof(0.0, 100.0)  # must not crash nor affect state
        assert clf.estimate is None

    def test_macro_detected_with_trending_tof(self):
        clf = MobilityClassifier(ClassifierConfig(similarity_smoothing_window=1))
        rng = np.random.default_rng(5)
        # Enter device mobility.
        clf.push_csi(0.0, _random_csi(rng))
        clf.push_csi(0.5, _random_csi(rng))
        assert clf.wants_tof
        # Feed 5 seconds of increasing ToF (50 samples/s).
        t = 0.5
        for second in range(5):
            for _ in range(50):
                t += 0.02
                clf.push_tof(t, 100.0 + second)
            estimate = clf.push_csi(t, _random_csi(rng))
        assert estimate.mode == MobilityMode.MACRO
        assert estimate.heading == Heading.AWAY

    def test_micro_when_tof_flat(self):
        clf = MobilityClassifier(ClassifierConfig(similarity_smoothing_window=1))
        rng = np.random.default_rng(6)
        clf.push_csi(0.0, _random_csi(rng))
        t = 0.0
        for second in range(5):
            for _ in range(50):
                t += 0.02
                clf.push_tof(t, 100.0 + rng.normal(0, 0.2))
            estimate = clf.push_csi(t, _random_csi(rng))
        assert estimate.mode == MobilityMode.MICRO

    def test_reset_forgets_everything(self):
        clf = MobilityClassifier()
        rng = np.random.default_rng(7)
        for i in range(4):
            clf.push_csi(0.5 * i, _random_csi(rng))
        clf.reset()
        assert clf.estimate is None
        assert not clf.wants_tof
        assert clf.history == []

    def test_history_grows_per_decision(self):
        clf = MobilityClassifier()
        rng = np.random.default_rng(8)
        for i in range(5):
            clf.push_csi(0.5 * i, _random_csi(rng))
        assert len(clf.history) == 4


class TestConfigValidation:
    def test_threshold_order_enforced(self):
        with pytest.raises(ValueError):
            ClassifierConfig(threshold_static=0.5, threshold_environmental=0.9)

    def test_positive_period(self):
        with pytest.raises(ValueError):
            ClassifierConfig(csi_sampling_period_s=0.0)


class TestHints:
    def test_heading_requires_macro(self):
        with pytest.raises(ValueError):
            MobilityEstimate(time_s=0.0, mode=MobilityMode.MICRO, heading=Heading.AWAY)

    def test_moving_flags(self):
        away = MobilityEstimate(0.0, MobilityMode.MACRO, Heading.AWAY)
        towards = MobilityEstimate(0.0, MobilityMode.MACRO, Heading.TOWARDS)
        static = MobilityEstimate(0.0, MobilityMode.STATIC)
        assert away.moving_away and not away.moving_towards
        assert towards.moving_towards and not towards.moving_away
        assert not static.moving_away and not static.is_device_mobility


class TestPolicyTable:
    def test_all_states_present(self):
        table = default_policy_table()
        for mode in MobilityMode:
            policy = table.lookup(mode)
            assert policy.aggregation_limit_ms > 0

    def test_macro_without_heading_uses_away_column(self):
        table = default_policy_table()
        assert table.lookup(MobilityMode.MACRO) is table.lookup(
            MobilityMode.MACRO, Heading.AWAY
        )

    def test_paper_aggregation_values(self):
        table = default_policy_table()
        assert table.lookup(MobilityMode.STATIC).aggregation_limit_ms == 8.0
        assert table.lookup(MobilityMode.ENVIRONMENTAL).aggregation_limit_ms == 8.0
        assert table.lookup(MobilityMode.MICRO).aggregation_limit_ms == 2.0
        assert table.lookup(MobilityMode.MACRO).aggregation_limit_ms == 2.0

    def test_static_keeps_longest_history(self):
        table = default_policy_table()
        alphas = {mode: table.lookup(mode).per_smoothing_factor for mode in MobilityMode}
        assert alphas[MobilityMode.STATIC] == min(alphas.values())

    def test_only_away_triggers_roaming(self):
        table = default_policy_table()
        assert table.lookup(MobilityMode.MACRO, Heading.AWAY).encourage_roaming
        assert not table.lookup(MobilityMode.MACRO, Heading.TOWARDS).encourage_roaming
        assert not table.lookup(MobilityMode.STATIC).encourage_roaming

    def test_feedback_periods_shrink_with_mobility(self):
        table = default_policy_table()
        static = table.lookup(MobilityMode.STATIC).su_bf_feedback_ms
        macro = table.lookup(MobilityMode.MACRO, Heading.AWAY).su_bf_feedback_ms
        assert macro < static

    def test_oblivious_defaults(self):
        policy = mobility_oblivious_policy()
        assert policy.per_smoothing_factor == pytest.approx(1 / 8)
        assert policy.aggregation_limit_ms == 4.0
        assert policy.rate_retries == 0
