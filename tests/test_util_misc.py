"""Unit tests for RNG plumbing, units, geometry, stats and special functions."""

import math

import numpy as np
import pytest

from repro.util.geometry import (
    Point,
    clamp_to_rect,
    distance,
    heading_between,
    project_along,
    radial_speed,
)
from repro.util.rng import ensure_rng, spawn_rngs, stable_seed
from repro.util.special import bessel_j0, jakes_correlation
from repro.util.stats import EmpiricalCDF, fraction, percentile_summary
from repro.util.units import (
    db_to_linear,
    dbm_to_milliwatts,
    linear_to_db,
    noise_floor_dbm,
    wavelength,
)


class TestRng:
    def test_ensure_rng_accepts_int(self):
        a = ensure_rng(7).random()
        b = ensure_rng(7).random()
        assert a == b

    def test_ensure_rng_passes_generator_through(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_spawn_rngs_independent(self):
        children = spawn_rngs(3, 4)
        draws = {round(c.random(), 12) for c in children}
        assert len(draws) == 4

    def test_spawn_rngs_deterministic(self):
        a = [c.random() for c in spawn_rngs(5, 3)]
        b = [c.random() for c in spawn_rngs(5, 3)]
        assert a == b

    def test_spawn_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_stable_seed_reproducible_and_distinct(self):
        assert stable_seed("fig7", 3) == stable_seed("fig7", 3)
        assert stable_seed("fig7", 3) != stable_seed("fig7", 4)
        assert stable_seed("a") != stable_seed("b")


class TestUnits:
    def test_db_roundtrip(self):
        assert linear_to_db(db_to_linear(13.0)) == pytest.approx(13.0)

    def test_dbm_conversion(self):
        assert dbm_to_milliwatts(0.0) == pytest.approx(1.0)
        assert dbm_to_milliwatts(30.0) == pytest.approx(1000.0)

    def test_zero_maps_to_negative_infinity(self):
        assert linear_to_db(0.0) == -math.inf

    def test_noise_floor_scales_with_bandwidth(self):
        narrow = noise_floor_dbm(20e6)
        wide = noise_floor_dbm(40e6)
        assert wide - narrow == pytest.approx(10 * math.log10(2), abs=1e-9)

    def test_noise_floor_value(self):
        # -174 + 10log10(40 MHz) + 7 dB NF ~= -91 dBm
        assert noise_floor_dbm(40e6, 7.0) == pytest.approx(-90.98, abs=0.05)

    def test_wavelength_5ghz(self):
        assert wavelength(5.825e9) == pytest.approx(0.05146, abs=1e-4)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            noise_floor_dbm(0.0)


class TestGeometry:
    def test_distance(self):
        assert distance(Point(0, 0), Point(3, 4)) == 5.0

    def test_heading(self):
        assert heading_between(Point(0, 0), Point(0, 1)) == pytest.approx(math.pi / 2)

    def test_project_along_roundtrip(self):
        start = Point(1.0, 2.0)
        end = project_along(start, 0.7, 5.0)
        assert distance(start, end) == pytest.approx(5.0)
        assert heading_between(start, end) == pytest.approx(0.7)

    def test_radial_speed_sign(self):
        anchor = Point(0, 0)
        away = radial_speed(Point(10, 0), (1.0, 0.0), anchor)
        towards = radial_speed(Point(10, 0), (-1.0, 0.0), anchor)
        assert away == pytest.approx(1.0)
        assert towards == pytest.approx(-1.0)

    def test_radial_speed_tangential_is_zero(self):
        assert radial_speed(Point(10, 0), (0.0, 1.0), Point(0, 0)) == pytest.approx(0.0)

    def test_clamp(self):
        clamped = clamp_to_rect(Point(-5, 50), 0, 0, 10, 10)
        assert clamped == Point(0, 10)

    def test_point_arithmetic(self):
        assert (Point(1, 2) + Point(3, 4)) == Point(4, 6)
        assert (Point(3, 4) - Point(1, 2)) == Point(2, 2)
        assert Point(3, 4).norm() == 5.0


class TestStats:
    def test_cdf_percentiles(self):
        cdf = EmpiricalCDF(list(range(101)))
        assert cdf.median() == 50.0
        assert cdf.percentile(10) == pytest.approx(10.0)

    def test_cdf_evaluate(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(2.0) == 0.5
        assert cdf.evaluate(0.0) == 0.0
        assert cdf.evaluate(10.0) == 1.0

    def test_cdf_curve_is_monotone(self):
        cdf = EmpiricalCDF(np.random.default_rng(0).normal(size=50).tolist())
        curve = cdf.curve(20)
        values = [v for v, _ in curve]
        probs = [p for _, p in curve]
        assert values == sorted(values)
        assert probs == sorted(probs)

    def test_empty_cdf_raises(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([]).median()

    def test_fraction_validation(self):
        assert fraction(3, 4) == 0.75
        with pytest.raises(ValueError):
            fraction(5, 4)
        with pytest.raises(ValueError):
            fraction(0, 0)

    def test_percentile_summary_keys(self):
        summary = percentile_summary([1.0, 2.0, 3.0])
        assert summary["median"] == 2.0
        assert summary["p10"] <= summary["p90"]


class TestBessel:
    def test_j0_known_values(self):
        # Reference values from tables.
        assert bessel_j0(0.0) == pytest.approx(1.0, abs=1e-7)
        assert bessel_j0(1.0) == pytest.approx(0.7651976866, abs=1e-6)
        assert bessel_j0(2.4048) == pytest.approx(0.0, abs=1e-4)  # first zero
        assert bessel_j0(5.0) == pytest.approx(-0.1775967713, abs=1e-6)
        assert bessel_j0(10.0) == pytest.approx(-0.2459357645, abs=1e-6)

    def test_j0_even(self):
        assert bessel_j0(-3.0) == pytest.approx(bessel_j0(3.0))

    def test_j0_vectorised(self):
        x = np.linspace(0, 20, 50)
        values = bessel_j0(x)
        assert values.shape == x.shape
        assert np.all(np.abs(values) <= 1.0 + 1e-9)

    def test_jakes_correlation_clipped(self):
        # J0 is negative around its first zero, but the correlation used
        # for staleness is clipped to [0, 1].
        rho = jakes_correlation(23.0, 0.025)  # x ~ 3.6 -> J0 < 0
        assert rho == 0.0

    def test_jakes_correlation_fresh(self):
        assert jakes_correlation(23.0, 0.0) == pytest.approx(1.0)

    def test_jakes_correlation_monotone_early(self):
        rhos = [float(jakes_correlation(10.0, dt)) for dt in (0.001, 0.005, 0.01, 0.02)]
        assert rhos == sorted(rhos, reverse=True)
