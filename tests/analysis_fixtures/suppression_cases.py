"""Suppression-hygiene fixture (goldens live in test_analysis.py).

Line numbers matter here: test_analysis.py asserts on them, so append
new cases at the end rather than inserting.
"""

import time


def justified_suppression_ok():
    return time.time()  # repro: noqa-REP002 fixture: justified suppression silences the finding


def missing_justification():
    return time.time()  # repro: noqa-REP002


def unused_suppression():
    return 1.0  # repro: noqa-REP002 nothing here reads any clock


def unknown_rule_code():
    return 2.0  # repro: noqa-REP998 no such rule exists
