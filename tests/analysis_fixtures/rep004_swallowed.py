"""REP004 fixture: silently swallowed failures."""


def bare_except(session):
    try:
        session.step()
    except:  # expect: REP004
        pass


def broad_and_silent(session):
    try:
        session.step()
    except Exception:  # expect: REP004
        pass


def broad_tuple_and_silent(session):
    try:
        session.step()
    except (ValueError, Exception):  # expect: REP004
        ...


def broad_but_counted_ok(session, recorder):
    try:
        session.step()
    except Exception:
        recorder.count("supervisor.degrade_errors")


def narrow_and_silent_ok(mapping, key):
    # Narrow types may pass silently; the rule targets broad absorption.
    try:
        return mapping[key]
    except KeyError:
        pass
    return None
