"""REP001 fixture: every way the seeded-RNG discipline can break."""

import random

import numpy as np
from numpy.random import default_rng


def draw_unseeded():
    rng = np.random.default_rng()  # expect: REP001
    return rng.normal()


def draw_unseeded_from_import():
    rng = default_rng()  # expect: REP001
    return rng.normal()


def legacy_global_state():
    return np.random.normal(0.0, 1.0)  # expect: REP001


def stdlib_module_call():
    return random.random()  # expect: REP001


def ignores_seed(trace, seed=None):  # expect: REP001
    return [sample * 2.0 for sample in trace]


def ignores_rng_param(samples, rng=None):  # expect: REP001
    return sum(samples)


def seeded_ok(seed=None):
    rng = np.random.default_rng(seed if seed is not None else 0)
    return rng.normal()


def deleted_seed_ok(position, seed=None):
    del seed  # deterministic output; signature kept uniform
    return position


def _private_helper(seed=None):
    # Leading-underscore helpers may ignore seed (callers own the contract).
    return 0.0


def abstract_like(seed=None):
    """Signature-only bodies are the contract, not a bug."""
    raise NotImplementedError
