"""REP003 fixture: telemetry names that miss the registry."""


def emits_unregistered_counter(recorder):
    recorder.count("handofs")  # expect: REP003


def emits_unregistered_event(recorder, now_s):
    recorder.event("run_strat", now_s)  # expect: REP003


def emits_unregistered_fstring(recorder, op):
    recorder.count(f"chanel.{op}.calls")  # expect: REP003


def emits_registered_ok(recorder, now_s, op):
    recorder.count("handoffs")
    recorder.count("classifier.mode.static")
    recorder.event("run_start", now_s)
    recorder.count(f"channel.{op}.calls")


def non_telemetry_receiver_ok(ledger):
    # `count` on something that is not a recorder/metrics/tracer/registry
    # receiver is out of scope for the rule.
    ledger.count("arbitrary.key")
