"""A file every rule passes under the strictest (src) context."""

import numpy as np


def simulate(duration_s: float, dt_s: float, seed=None):
    rng = np.random.default_rng(seed if seed is not None else 0)
    n_steps = int(duration_s / dt_s)
    return rng.normal(size=n_steps)


def observe_run(recorder, now_s: float) -> None:
    recorder.event("run_start", now_s)
    recorder.count("scans")


def guarded_profile(recorder, work) -> float:
    from time import perf_counter

    live = recorder.enabled
    start = perf_counter() if live else 0.0
    work()
    if live:
        elapsed_s = perf_counter() - start
        recorder.observe("phase.elapsed_s", elapsed_s)
        return elapsed_s
    return 0.0
