"""REP005 fixture: time/frequency parameters missing unit suffixes."""


def waits(timeout: float) -> None:  # expect: REP005
    del timeout


def tunes(center_freq: float = 2.412) -> None:  # expect: REP005
    del center_freq


def backs_off(*, retry_backoff=1.5) -> None:  # expect: REP005
    del retry_backoff


def waits_ok(timeout_s: float) -> None:
    del timeout_s


def tunes_ok(center_freq_ghz: float = 2.412) -> None:
    del center_freq_ghz


def counts_ok(interval: int) -> None:
    # Non-float quantities are out of scope (an int `interval` count).
    del interval


def _private_ok(timeout: float) -> None:
    del timeout
