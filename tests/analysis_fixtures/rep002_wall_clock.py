"""REP002 fixture: wall-clock reads and unguarded stopwatches."""

import time
from datetime import datetime
from time import perf_counter


def stamps_wall_clock():
    return time.time()  # expect: REP002


def stamps_wall_clock_ns():
    return time.time_ns()  # expect: REP002


def stamps_datetime():
    return datetime.now()  # expect: REP002


def unguarded_stopwatch():
    started = perf_counter()  # expect: REP002
    return perf_counter() - started  # expect: REP002


def unguarded_monotonic():
    return time.monotonic()  # expect: REP002


def guarded_stopwatch_ok(recorder):
    live = recorder.enabled
    start = perf_counter() if live else 0.0
    if live:
        elapsed_s = perf_counter() - start
        recorder.observe("phase.elapsed_s", elapsed_s)


def guarded_attribute_ok(recorder):
    if recorder.enabled:
        return perf_counter()
    return 0.0


def else_branch_is_not_guarded(recorder):
    if recorder.enabled:
        return 0.0
    else:
        return perf_counter()  # expect: REP002
