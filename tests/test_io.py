"""Tests for trace persistence and the CSI Tool format adapter."""

import numpy as np
import pytest

from repro.channel.config import ChannelConfig
from repro.channel.model import LinkChannel
from repro.core.classifier import MobilityClassifier
from repro.io.csitool import (
    N_SUBCARRIERS,
    CsiRecord,
    read_csitool_log,
    records_to_csi_stream,
    write_csitool_log,
)
from repro.io.traces import FORMAT_VERSION, load_trace, save_trace
from repro.mobility.trajectory import StaticTrajectory
from repro.testing import synthetic_trace
from repro.util.geometry import Point

# These tests go through the deprecated 1.1 shim entry points on purpose
# (pinning their behaviour); their DeprecationWarnings are expected here
# while CI escalates unexpected ones to errors.
pytestmark = pytest.mark.filterwarnings("ignore:simulate_:DeprecationWarning")


class TestTracePersistence:
    def test_roundtrip_without_csi(self, tmp_path):
        trace = synthetic_trace(snr_db=lambda t: 20.0 + t, duration_s=3.0)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.times, trace.times)
        assert np.array_equal(loaded.snr_db, trace.snr_db)
        assert loaded.h is None

    def test_roundtrip_with_csi(self, tmp_path):
        trajectory = StaticTrajectory(Point(10, 5)).sample(2.0, 0.1)
        link = LinkChannel(Point(0, 0), ChannelConfig(), seed=1)
        trace = link.evaluate(trajectory.times, trajectory.positions, include_h=True)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.h, trace.h)
        assert np.array_equal(loaded.effective_snr_db, trace.effective_snr_db)

    def test_version_check(self, tmp_path):
        trace = synthetic_trace(duration_s=1.0)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        # Corrupt the version field.
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["format_version"] = np.array(FORMAT_VERSION + 1)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError):
            load_trace(path)

    def test_loaded_trace_usable_by_simulator(self, tmp_path):
        from repro.mac.aggregation import FrameTransmitter
        from repro.rate.atheros import AtherosRateAdaptation
        from repro.rate.simulator import simulate_rate_control

        trace = synthetic_trace(snr_db=25.0, duration_s=3.0)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        result = simulate_rate_control(
            AtherosRateAdaptation(),
            loaded,
            transmitter=FrameTransmitter(seed=2),
            perturbations=None,
        )
        assert result.throughput_mbps > 10.0


def _make_record(rng, timestamp=1000, n_tx=2, n_rx=3) -> CsiRecord:
    csi = np.round(rng.uniform(-120, 120, (N_SUBCARRIERS, n_tx, n_rx))) + 1j * np.round(
        rng.uniform(-120, 120, (N_SUBCARRIERS, n_tx, n_rx))
    )
    return CsiRecord(
        timestamp_low=timestamp,
        bfee_count=7,
        n_rx=n_rx,
        n_tx=n_tx,
        rssi_a=40,
        rssi_b=42,
        rssi_c=38,
        noise=-92,
        agc=30,
        antenna_sel=0b100100,
        rate=0x1234,
        csi=csi,
    )


class TestCsiToolFormat:
    def test_roundtrip_single_record(self, tmp_path):
        rng = np.random.default_rng(1)
        record = _make_record(rng)
        path = tmp_path / "log.dat"
        write_csitool_log([record], path)
        loaded = read_csitool_log(path)
        assert len(loaded) == 1
        got = loaded[0]
        assert got.timestamp_low == record.timestamp_low
        assert got.n_rx == record.n_rx and got.n_tx == record.n_tx
        assert got.noise == -92
        assert got.rate == 0x1234
        assert np.array_equal(got.csi, record.csi)

    def test_roundtrip_many_records_mixed_antennas(self, tmp_path):
        rng = np.random.default_rng(2)
        records = [
            _make_record(rng, timestamp=1000 * i, n_tx=1 + (i % 3), n_rx=3)
            for i in range(12)
        ]
        path = tmp_path / "log.dat"
        write_csitool_log(records, path)
        loaded = read_csitool_log(path)
        assert len(loaded) == 12
        for original, got in zip(records, loaded):
            assert np.array_equal(got.csi, original.csi)

    def test_skips_non_bfee_records(self, tmp_path):
        rng = np.random.default_rng(3)
        record = _make_record(rng)
        path = tmp_path / "log.dat"
        write_csitool_log([record], path)
        # Append an unrelated record (code 0xC1) and a second CSI record.
        import struct

        with open(path, "ab") as handle:
            junk = b"hello"
            handle.write(struct.pack(">H", len(junk) + 1))
            handle.write(bytes([0xC1]))
            handle.write(junk)
        write2 = tmp_path / "log2.dat"
        write_csitool_log([record], write2)
        with open(path, "ab") as handle:
            handle.write(write2.read_bytes())
        loaded = read_csitool_log(path)
        assert len(loaded) == 2

    def test_tolerates_truncated_tail(self, tmp_path):
        rng = np.random.default_rng(4)
        path = tmp_path / "log.dat"
        write_csitool_log([_make_record(rng)], path)
        data = path.read_bytes()
        path.write_bytes(data + b"\x00\xff\xbb\x01")  # truncated header
        assert len(read_csitool_log(path)) == 1

    def test_permutation_decoding(self):
        rng = np.random.default_rng(5)
        record = _make_record(rng)
        # antenna_sel 0b100100 -> perm (0, 1, 2)
        assert record.permutation == (0, 1, 2)

    def test_total_rss(self):
        rng = np.random.default_rng(6)
        record = _make_record(rng)
        rss = record.total_rss_dbm()
        # Three chains around 40 dB-units, minus 44 and AGC 30.
        assert -40.0 < rss < -20.0

    def test_scaled_csi_preserves_shape_and_profile(self):
        rng = np.random.default_rng(7)
        record = _make_record(rng)
        scaled = record.scaled_csi()
        assert scaled.shape == record.csi.shape
        # Scaling is a positive real factor: the gain *profile* (what the
        # classifier correlates) is unchanged.
        from repro.core.similarity import csi_similarity

        assert csi_similarity(record.csi, scaled) == pytest.approx(1.0)


class TestCsiStream:
    def test_timestamp_wraparound(self):
        rng = np.random.default_rng(8)
        records = [
            _make_record(rng, timestamp=2**32 - 500_000),
            _make_record(rng, timestamp=2**32 - 100),
            _make_record(rng, timestamp=400_000),  # wrapped
        ]
        times, matrices = records_to_csi_stream(records)
        assert len(matrices) == 3
        assert times[0] == 0.0
        assert np.all(np.diff(times) > 0)  # monotone despite the wrap

    def test_skips_duplicate_timestamp(self):
        """Regression: a duplicated timestamp_low is not a wrap — it must
        not pass through as a zero-dt step into the time-aware pipeline."""
        rng = np.random.default_rng(18)
        records = [
            _make_record(rng, timestamp=1_000),
            _make_record(rng, timestamp=2_000),
            _make_record(rng, timestamp=2_000),  # duplicate capture
            _make_record(rng, timestamp=3_000),
        ]
        times, matrices = records_to_csi_stream(records)
        assert len(matrices) == 3
        assert np.all(np.diff(times) > 0)

    def test_skips_small_backwards_timestamp(self):
        """A small backwards jump (driver reordering) is far below the
        half-range wrap threshold; the old reader let it through silently."""
        rng = np.random.default_rng(19)
        records = [
            _make_record(rng, timestamp=1_000),
            _make_record(rng, timestamp=50_000),
            _make_record(rng, timestamp=40_000),  # out-of-order delivery
            _make_record(rng, timestamp=60_000),
        ]
        times, matrices = records_to_csi_stream(records)
        assert len(matrices) == 3
        assert np.all(np.diff(times) > 0)
        # The reference stayed at the last *accepted* record, so the final
        # in-order record lands at its true offset.
        assert times[-1] == pytest.approx((60_000 - 1_000) / 1e6)

    def test_nonmonotonic_counts_into_telemetry(self):
        from repro.telemetry import TelemetryRecorder

        rng = np.random.default_rng(20)
        records = [
            _make_record(rng, timestamp=1_000),
            _make_record(rng, timestamp=900),
            _make_record(rng, timestamp=1_000),
            _make_record(rng, timestamp=2_000),
        ]
        recorder = TelemetryRecorder()
        times, matrices = records_to_csi_stream(records, recorder=recorder)
        assert len(matrices) == 2
        assert recorder.metrics.counters()["io.csitool.nonmonotonic"] == 2.0

    def test_nonmonotonic_raise_policy(self):
        rng = np.random.default_rng(21)
        records = [
            _make_record(rng, timestamp=5_000),
            _make_record(rng, timestamp=5_000),
        ]
        with pytest.raises(ValueError, match="non-monotonic.*record 1"):
            records_to_csi_stream(records, nonmonotonic="raise")

    def test_nonmonotonic_policy_validated(self):
        with pytest.raises(ValueError, match="nonmonotonic"):
            records_to_csi_stream([], nonmonotonic="ignore")

    def test_corrupt_timestamp_does_not_poison_wrap_detection(self):
        """One absurd spike must not shift the wrap reference: records
        after it continue from the last good timestamp."""
        rng = np.random.default_rng(22)
        records = [
            _make_record(rng, timestamp=2**32 - 1_000),
            _make_record(rng, timestamp=500),  # genuine wrap
            _make_record(rng, timestamp=400),  # out-of-order after the wrap
            _make_record(rng, timestamp=1_500),
        ]
        times, matrices = records_to_csi_stream(records)
        assert len(matrices) == 3
        assert np.all(np.diff(times) > 0)
        assert times[-1] == pytest.approx(2_500 / 1e6)

    def test_classifier_consumes_real_format(self, tmp_path):
        """End-to-end: CSI Tool log -> classifier decisions."""
        rng = np.random.default_rng(9)
        base = np.abs(rng.standard_normal((N_SUBCARRIERS, 2, 3))) * 40 + 20
        records = []
        for i in range(8):
            csi = np.round(base + rng.normal(0, 0.5, base.shape)) + 0j
            records.append(
                CsiRecord(
                    timestamp_low=500_000 * i,
                    bfee_count=i,
                    n_rx=3,
                    n_tx=2,
                    rssi_a=40,
                    rssi_b=42,
                    rssi_c=38,
                    noise=-92,
                    agc=30,
                    antenna_sel=0b100100,
                    rate=0x1234,
                    csi=csi,
                )
            )
        path = tmp_path / "static.dat"
        write_csitool_log(records, path)
        loaded = read_csitool_log(path)
        times, matrices = records_to_csi_stream(loaded)
        clf = MobilityClassifier()
        estimate = None
        for t, h in zip(times, matrices):
            estimate = clf.push_csi(float(t), h) or estimate
        from repro.mobility.modes import MobilityMode

        assert estimate is not None
        assert estimate.mode == MobilityMode.STATIC  # a stable real-format log


class TestMultiApPersistence:
    def test_roundtrip(self, tmp_path):
        from repro.io.traces import load_multi, save_multi
        from repro.mobility.trajectory import StaticTrajectory
        from repro.wlan.floorplan import default_office_floorplan
        from repro.wlan.multilink import MultiApChannel
        from repro.util.geometry import Point

        trajectory = StaticTrajectory(Point(10, 10)).sample(2.0, 0.05)
        multi = MultiApChannel(default_office_floorplan(), seed=30).evaluate(
            trajectory, sample_interval_s=0.2, include_h_for=[0]
        )
        path = tmp_path / "walk.npz"
        save_multi(multi, path)
        loaded = load_multi(path)
        assert loaded.floorplan.n_aps == 6
        assert np.array_equal(loaded.times, multi.times)
        assert np.array_equal(loaded.traces[0].h, multi.traces[0].h)
        assert loaded.traces[1].h is None
        assert np.array_equal(
            loaded.trajectory.positions, multi.trajectory.positions
        )

    def test_loaded_bundle_usable_by_roaming(self, tmp_path):
        from repro.io.traces import load_multi, save_multi
        from repro.mobility.trajectory import WaypointWalkTrajectory
        from repro.roaming.schemes import DefaultClientRoaming
        from repro.roaming.simulator import simulate_roaming
        from repro.wlan.floorplan import default_office_floorplan
        from repro.wlan.multilink import MultiApChannel
        from repro.util.geometry import Point

        trajectory = WaypointWalkTrajectory(
            Point(5, 5), area=(2, 2, 38, 23), seed=31
        ).sample(10.0, 0.02)
        multi = MultiApChannel(default_office_floorplan(), seed=31).evaluate(
            trajectory, sample_interval_s=0.1
        )
        path = tmp_path / "walk.npz"
        save_multi(multi, path)
        loaded = load_multi(path)
        result = simulate_roaming(loaded, DefaultClientRoaming(), seed=32)
        assert result.mean_throughput_mbps > 0.0

    def test_type_validated(self, tmp_path):
        from repro.io.traces import save_multi

        with pytest.raises(TypeError):
            save_multi(object(), tmp_path / "x.npz")
