"""Tests for ToF-based ranging."""

import numpy as np
import pytest

from repro.phy.ranging import RangingErrorStats, ToFRangeEstimator, evaluate_ranging
from repro.phy.tof import ToFConfig, ToFSampler, tof_cycles_for_distance


class TestEstimator:
    def test_default_offset_from_config(self):
        estimator = ToFRangeEstimator()
        clean = tof_cycles_for_distance(15.0)
        assert estimator.cycles_to_distance(clean) == pytest.approx(15.0, abs=1e-6)

    def test_calibration_recovers_offset(self):
        config = ToFConfig(turnaround_cycles=900.0, noise_std_cycles=0.0, quantize=False,
                           outlier_probability=0.0)
        sampler = ToFSampler(config, seed=1)
        readings = sampler.sample(np.full(100, 10.0))
        # Start mis-calibrated, then calibrate at the known 10 m point.
        estimator = ToFRangeEstimator(ToFConfig(turnaround_cycles=0.0))
        estimator.calibrate(readings, known_distance_m=10.0)
        clean = 2 * 25.0 / 3e8 * config.clock_hz + 900.0
        assert estimator.cycles_to_distance(clean) == pytest.approx(25.0, rel=0.01)

    def test_negative_distances_clamped(self):
        estimator = ToFRangeEstimator()
        assert estimator.cycles_to_distance(0.0) == 0.0

    def test_streaming_estimates(self):
        config = ToFConfig()
        sampler = ToFSampler(config, seed=2)
        estimator = ToFRangeEstimator(config, readings_per_estimate=50)
        readings = sampler.sample(np.full(200, 12.0))
        estimates = [estimator.push(float(r)) for r in readings]
        produced = [e for e in estimates if e is not None]
        assert len(produced) == 4
        for estimate in produced:
            # Commodity ToF ranging: a few metres of error is expected.
            assert abs(estimate.distance_m - 12.0) < 6.0

    def test_calibration_validation(self):
        estimator = ToFRangeEstimator()
        with pytest.raises(ValueError):
            estimator.calibrate([1.0], known_distance_m=5.0)
        with pytest.raises(ValueError):
            estimator.calibrate([1.0, 2.0, 3.0], known_distance_m=-1.0)


class TestEvaluation:
    def test_error_stats_realistic(self):
        """Median ranging error lands in the CUPID-reported few-metre range."""
        config = ToFConfig()
        sampler = ToFSampler(config, seed=3)
        rng = np.random.default_rng(4)
        distances = rng.uniform(5.0, 30.0, size=5000)
        # Hold each distance for one full batch (a static measurement set).
        distances = np.repeat(distances[:100], 50)
        readings = sampler.sample(distances)
        stats = evaluate_ranging(ToFRangeEstimator(config), readings, distances)
        assert isinstance(stats, RangingErrorStats)
        assert stats.n_estimates == 100
        assert stats.median_abs_error_m < 4.0  # commodity-grade, CUPID-like
        assert abs(stats.bias_m) < 2.0  # outliers are median-filtered away

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            evaluate_ranging(ToFRangeEstimator(), [1.0, 2.0], [1.0])

    def test_too_few_readings(self):
        with pytest.raises(ValueError):
            evaluate_ranging(ToFRangeEstimator(), [700.0] * 10, [10.0] * 10)
