"""Focused tests of the roaming simulator internals."""

import numpy as np
import pytest

from repro.channel.config import ChannelConfig
from repro.core.classifier import ClassifierConfig
from repro.mobility.scenarios import macro_scenario
from repro.mobility.trajectory import ApproachRetreatTrajectory, StaticTrajectory
from repro.roaming.schemes import ControllerRoaming, DefaultClientRoaming
from repro.roaming.simulator import simulate_roaming
from repro.util.geometry import Point
from repro.wlan.floorplan import default_office_floorplan
from repro.wlan.multilink import MultiApChannel

# These tests go through the deprecated 1.1 shim entry points on purpose
# (pinning their behaviour); their DeprecationWarnings are expected here
# while CI escalates unexpected ones to errors.
pytestmark = pytest.mark.filterwarnings("ignore:simulate_:DeprecationWarning")

CFG = ChannelConfig(tx_power_dbm=8.0)


def _multi(trajectory, seed=1, include_h=True):
    floorplan = default_office_floorplan()
    return MultiApChannel(floorplan, CFG, seed=seed).evaluate(
        trajectory, sample_interval_s=0.1, include_h=include_h
    )


class TestControllerDecisionQuality:
    def test_forced_roams_happen_while_leaving_a_cell(self):
        """Controller roams are forced (no client scans) and occur during
        macro-away motion."""
        floorplan = default_office_floorplan()
        # Walk straight from AP0's cell towards AP2's cell.
        trajectory = ApproachRetreatTrajectory(
            anchor=floorplan.ap_positions[0],
            start=Point(8.0, 6.5),
            min_distance_m=1.0,
            max_distance_m=28.0,
            leg_duration_s=60.0,
            start_towards=False,
            seed=2,
        ).sample(25.0, 0.02)
        multi = _multi(trajectory, seed=3)
        result = simulate_roaming(multi, ControllerRoaming(), seed=4)
        forced = [h for h in result.handoffs if h.forced_by_controller]
        assert forced, "leaving the cell must trigger a controller roam"
        # The roam happens after the trend window can fill (~6 s).
        assert forced[0].time_s > 5.0

    def test_static_client_is_never_forced(self):
        trajectory = StaticTrajectory(Point(8.0, 7.0)).sample(30.0, 0.02)
        multi = _multi(trajectory, seed=5)
        result = simulate_roaming(multi, ControllerRoaming(), seed=6)
        assert not any(h.forced_by_controller for h in result.handoffs)

    def test_handoff_events_reference_valid_aps(self):
        scenario = macro_scenario(Point(4, 4), area=(2, 2, 38, 23), seed=7)
        trajectory = scenario.sample(40.0, 0.02)
        multi = _multi(trajectory, seed=7)
        result = simulate_roaming(multi, ControllerRoaming(), seed=8)
        for event in result.handoffs:
            assert 0 <= event.from_ap < 6
            assert 0 <= event.to_ap < 6
            assert event.from_ap != event.to_ap

    def test_ap_timeline_consistent_with_handoffs(self):
        scenario = macro_scenario(Point(4, 4), area=(2, 2, 38, 23), seed=9)
        trajectory = scenario.sample(30.0, 0.02)
        multi = _multi(trajectory, seed=9)
        result = simulate_roaming(multi, ControllerRoaming(), seed=10)
        changes = int(np.sum(np.diff(result.ap_timeline) != 0))
        assert changes == len(result.handoffs)


class TestOutageAccounting:
    def test_forced_handoff_cheaper_than_client_handoff(self):
        """802.11r-style forced roams cost less outage than scan+associate."""
        scenario = macro_scenario(Point(4, 4), area=(2, 2, 38, 23), seed=11)
        trajectory = scenario.sample(40.0, 0.02)
        multi = _multi(trajectory, seed=11)
        slow = simulate_roaming(
            multi, ControllerRoaming(), forced_handoff_outage_s=0.5, seed=12
        )
        fast = simulate_roaming(
            multi, ControllerRoaming(), forced_handoff_outage_s=0.05, seed=12
        )
        slow_outage = float(np.mean(slow.goodput_mbps == 0.0))
        fast_outage = float(np.mean(fast.goodput_mbps == 0.0))
        assert fast_outage <= slow_outage

    def test_scan_outage_counted(self):
        trajectory = StaticTrajectory(Point(38.0, 23.0)).sample(20.0, 0.02)  # weak corner
        multi = _multi(trajectory, seed=13, include_h=False)
        result = simulate_roaming(
            multi, DefaultClientRoaming(rssi_threshold_dbm=-40.0), seed=14
        )
        # With an absurd threshold the client scans constantly.
        assert result.n_scans > 2


class TestClassifierIntegration:
    def test_classifier_reset_on_roam(self):
        """After a roam the (new) serving AP must re-learn: the first
        seconds after a handoff must not carry macro estimates."""
        floorplan = default_office_floorplan()
        trajectory = ApproachRetreatTrajectory(
            anchor=floorplan.ap_positions[0],
            start=Point(8.0, 6.5),
            min_distance_m=1.0,
            max_distance_m=28.0,
            leg_duration_s=60.0,
            start_towards=False,
            seed=15,
        ).sample(30.0, 0.02)
        multi = _multi(trajectory, seed=16)
        config = ClassifierConfig()
        result = simulate_roaming(multi, ControllerRoaming(), classifier_config=config, seed=17)
        # Sanity only: the run completes with a coherent timeline.
        assert len(result.times) == len(result.goodput_mbps)


class TestNeighborRanging:
    def test_reports_include_distance(self):
        """Neighbour APs report ToF-ranged distance (paper Section 3.1)."""
        from repro.roaming.base import RoamingDecision, RoamingScheme

        captured = {}

        class Probe(RoamingScheme):
            name = "probe"

            def decide(self, ctx):
                captured["report"] = ctx.neighbor_report()
                return RoamingDecision()

        trajectory = StaticTrajectory(Point(10.0, 10.0)).sample(5.0, 0.02)
        multi = _multi(trajectory, seed=20, include_h=False)
        simulate_roaming(multi, Probe(), seed=21)
        report = captured["report"]
        distances = [obs.distance_m for obs in report.values()]
        assert all(d is not None for d in distances)
        # Ranged distances are commodity-grade: within a few metres.
        floorplan = default_office_floorplan()
        for ap_index, obs in report.items():
            true = np.hypot(
                10.0 - floorplan.ap_positions[ap_index].x,
                10.0 - floorplan.ap_positions[ap_index].y,
            )
            assert abs(obs.distance_m - true) < 6.0
