"""The observability subsystem: metrics, tracing, recorders, exporters.

The load-bearing guarantee is *zero interference*: a live
:class:`TelemetryRecorder` must never change simulation results — seeded
runs stay bit-identical with telemetry on or off, pinned here against the
same golden values as :mod:`tests.test_golden_engine`.
"""

import csv
import io
import json
from time import perf_counter

import numpy as np
import pytest

from repro.channel.config import ChannelConfig
from repro.channel.model import MultiLinkChannel
from repro.core.classifier import MobilityClassifier
from repro.core.hints import MobilityEstimate
from repro.mobility.modes import Heading, MobilityMode
from repro.mobility.trajectory import WaypointWalkTrajectory
from repro.rate.atheros import AtherosRateAdaptation
from repro.rate.simulator import RateControlSession
from repro.sim import SensingSession, Session, SimulationEngine, TimeGrid
from repro.telemetry import (
    DEFAULT_HISTOGRAM_EDGES,
    NULL_RECORDER,
    HistogramMetric,
    MetricsRegistry,
    NullRecorder,
    Recorder,
    TelemetryRecorder,
    Tracer,
    events_to_jsonl,
    format_counts,
    metrics_to_csv,
    render_run_summary,
)
from repro.testing import synthetic_trace
from repro.util.geometry import Point
from repro.wlan.scheduler import MobilityAwareScheduler, SchedulingSession


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.count("frames")
        registry.count("frames", 2.0)
        assert registry.counter("frames").value == 3.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().count("frames", -1.0)

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        registry.set_gauge("mbps", 10.0)
        registry.set_gauge("mbps", 7.5)
        assert registry.gauge("mbps").value == 7.5
        assert registry.gauge("mbps").n_sets == 2

    def test_per_client_series_stay_separate(self):
        registry = MetricsRegistry()
        registry.count("frames", client="a")
        registry.count("frames", client="b")
        registry.count("frames", client="b")
        assert registry.counters() == {"frames [a]": 1.0, "frames [b]": 2.0}

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.count("x")
        with pytest.raises(TypeError):
            registry.set_gauge("x", 1.0)

    def test_rows_are_flat_and_sorted(self):
        registry = MetricsRegistry()
        registry.set_gauge("b", 2.0)
        registry.count("a", client="c1")
        rows = list(registry.rows())
        assert rows == [
            ("counter", "a", "c1", "value", 1.0),
            ("gauge", "b", "", "value", 2.0),
        ]


class TestHistogram:
    def test_bucket_edges(self):
        hist = HistogramMetric("t", edges=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.9, 2.0, 4.0, 100.0):
            hist.observe(value)
        # underflow | [1,2) | [2,4) | >=4
        assert hist.counts.tolist() == [1, 2, 1, 2]
        assert hist.bucket_label(0) == "<1"
        assert hist.bucket_label(1) == "[1,2)"
        assert hist.bucket_label(3) == ">=4"
        assert hist.n == 6
        assert hist.min == 0.5 and hist.max == 100.0
        assert hist.mean == pytest.approx(sum((0.5, 1.0, 1.9, 2.0, 4.0, 100.0)) / 6)

    def test_default_edges_cover_wall_times(self):
        hist = HistogramMetric("t")
        hist.observe(3e-6)
        hist.observe(0.5)
        assert hist.counts.sum() == 2
        assert hist.counts[0] == 0  # nothing underflows typical wall times
        assert len(hist.counts) == len(DEFAULT_HISTOGRAM_EDGES) + 1

    def test_edges_must_increase(self):
        with pytest.raises(ValueError):
            HistogramMetric("t", edges=(1.0, 1.0))


class TestTracer:
    def test_ring_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.emit("tick", float(i))
        assert len(tracer) == 3
        assert tracer.n_emitted == 5
        assert tracer.n_dropped == 2
        assert [e.time_s for e in tracer] == [2.0, 3.0, 4.0]

    def test_kinds_and_of_kind(self):
        tracer = Tracer()
        tracer.emit("a", 0.0)
        tracer.emit("b", 1.0, client="c")
        tracer.emit("a", 2.0)
        assert tracer.kinds() == {"a": 2, "b": 1}
        assert [e.time_s for e in tracer.of_kind("a")] == [0.0, 2.0]

    def test_jsonl_round_trip(self):
        tracer = Tracer()
        tracer.emit("classifier_verdict", 1.5, client="c0", mode="static", similarity=0.99)
        tracer.emit("phase", 2.0, step=4, phase="transmit", elapsed_s=1e-4)
        text = events_to_jsonl(tracer)
        lines = text.splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0] == {
            "kind": "classifier_verdict",
            "time_s": 1.5,
            "client": "c0",
            "mode": "static",
            "similarity": 0.99,
        }
        assert records[1]["step"] == 4 and records[1]["phase"] == "transmit"


class TestRecorders:
    def test_null_recorder_is_silent(self):
        rec = NullRecorder()
        assert rec.enabled is False
        # every hook is a no-op returning None
        assert rec.count("x") is None
        assert rec.gauge("x", 1.0) is None
        assert rec.observe("x", 1.0) is None
        assert rec.event("k", 0.0, extra=1) is None
        assert rec.phase_time("sense", 0, 0.0, 1e-6) is None
        assert rec.channel_eval("op", 1, 10, 1e-3) is None

    def test_telemetry_recorder_accumulates(self):
        rec = TelemetryRecorder()
        rec.event("adaptation", 1.0, client="c", action="scan")
        rec.phase_time("transmit", 0, 0.0, 2e-3)
        rec.channel_eval("evaluate_many", 3, 50, 1e-3, batched=True)
        kinds = rec.tracer.kinds()
        assert kinds == {"adaptation": 1, "phase": 1, "channel_batch": 1}
        assert rec.metrics.counter("events.adaptation").value == 1.0
        assert rec.profile.total_phase_s == pytest.approx(2e-3)
        assert rec.profile.channel_calls["evaluate_many"] == 1


GOLDEN_SCHEDULER_MBPS = [31.442577806818026, 14.087297458742356, 50.100227719646455]
GOLDEN_SCHEDULER_SLOTS = [596, 667, 1145]


def _scheduler_run(recorder):
    traces = [
        synthetic_trace(snr_db=22.0, duration_s=10.0),
        synthetic_trace(snr_db=lambda t: 10.0 + 1.2 * t, duration_s=10.0, doppler_hz=23.0),
        synthetic_trace(snr_db=lambda t: 34.0 - 1.2 * t, duration_s=10.0, doppler_hz=23.0),
    ]
    hints = [
        [MobilityEstimate(0.1, MobilityMode.STATIC)],
        [MobilityEstimate(0.1, MobilityMode.MACRO, Heading.TOWARDS, tof_window_full=True)],
        [MobilityEstimate(0.1, MobilityMode.MACRO, Heading.AWAY, tof_window_full=True)],
    ]
    session = SchedulingSession(
        MobilityAwareScheduler(), traces, hints=hints, transmitter_seed=3
    )
    engine = SimulationEngine(TimeGrid(traces[0].times), recorder=recorder)
    engine.add(session)
    return engine.run()[session.client]


class TestGoldenBitIdentical:
    """Live telemetry must not perturb the pinned golden results."""

    def test_scheduler_golden_with_live_recorder(self):
        recorder = TelemetryRecorder()
        result = _scheduler_run(recorder)
        assert result.per_client_mbps == GOLDEN_SCHEDULER_MBPS
        assert result.slots_served == GOLDEN_SCHEDULER_SLOTS
        # the run actually traced: hints were applied, slots counted
        assert recorder.tracer.kinds()["adaptation"] == 3
        assert recorder.metrics.counter("scheduler.slots", client="2").value == 1145

    def test_scheduler_golden_with_null_recorder(self):
        assert _scheduler_run(NULL_RECORDER).per_client_mbps == GOLDEN_SCHEDULER_MBPS


def _for_clients_run(recorder):
    """Seeded 3-client run mixing sensing (classifier) and rate sessions."""
    n = 3
    trajectories = [
        WaypointWalkTrajectory(Point(5.0 + i, 5.0), area=(-40, -40, 40, 40), seed=10 + i).sample(
            5.0, 0.05
        )
        for i in range(n)
    ]
    hints = [MobilityEstimate(1.0, MobilityMode.MACRO, Heading.AWAY, tof_window_full=True)]

    def factory(index, trace):
        if index == 0:
            measured = trace.measured_csi(np.random.default_rng(0))
            return SensingSession(MobilityClassifier(), measured, client="sense-0")
        return RateControlSession(
            AtherosRateAdaptation(), trace, hints=hints, client=f"rate-{index}"
        )

    channel = MultiLinkChannel.for_clients(Point(0, 0), n, ChannelConfig(), seed=9)
    engine = SimulationEngine.for_clients(
        channel, trajectories, factory, sample_interval_s=0.1, include_h=True, recorder=recorder
    )
    return engine.run()


class TestAcceptanceRun:
    """The ISSUE acceptance: seeded for_clients run, live recorder, all
    exporters parseable, results bit-identical to the NullRecorder run."""

    @pytest.fixture(scope="class")
    def live(self):
        recorder = TelemetryRecorder()
        results = _for_clients_run(recorder)
        return recorder, results

    def test_bit_identical_with_recorder_off(self, live):
        _, live_results = live
        null_results = _for_clients_run(NULL_RECORDER)
        assert [e.mode for e in null_results["sense-0"]] == [
            e.mode for e in live_results["sense-0"]
        ]
        for name in ("rate-1", "rate-2"):
            assert null_results[name].throughput_mbps == live_results[name].throughput_mbps
            assert null_results[name].n_frames == live_results[name].n_frames

    def test_required_event_kinds_present(self, live):
        recorder, _ = live
        kinds = set(recorder.tracer.kinds())
        assert {
            "run_start",
            "run_end",
            "phase",
            "channel_batch",
            "classifier_verdict",
            "adaptation",
        } <= kinds

    def test_channel_batch_event_carries_batch_size(self, live):
        recorder, _ = live
        (event,) = recorder.tracer.of_kind("channel_batch")
        assert event.fields["batch_size"] == 3
        assert event.fields["op"] == "evaluate_many"
        assert event.fields["elapsed_s"] > 0

    def test_jsonl_trace_parses(self, live, tmp_path):
        recorder, _ = live
        path = tmp_path / "trace.jsonl"
        recorder.write_events_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(recorder.tracer)
        for line in lines:
            record = json.loads(line)
            assert "kind" in record and "time_s" in record

    def test_metrics_csv_parses(self, live, tmp_path):
        recorder, _ = live
        path = tmp_path / "metrics.csv"
        recorder.write_metrics_csv(path)
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["metric", "name", "client", "field", "value"]
        kinds = {row[0] for row in rows[1:]}
        assert {"counter", "gauge", "histogram"} <= kinds
        for row in rows[1:]:
            float(row[4])  # every value parses as a number

    def test_run_summary_renders(self, live):
        recorder, _ = live
        text = recorder.summary()
        assert "phase wall time:" in text
        assert "channel evaluation:" in text
        assert "events:" in text
        assert "transmit" in text


class _CheckCountingRecorder(Recorder):
    """Disabled recorder whose ``enabled`` accesses are counted."""

    def __init__(self):
        self.checks = 0

    @property
    def enabled(self):
        self.checks += 1
        return False


def _overhead_engine(recorder):
    """The 32-client benchmark run, with ``recorder`` force-bound.

    ``bind_recorder`` is applied even though the recorder is disabled so
    that every ``recorder.enabled`` gate in the hot paths hits it — the
    exact attribute accesses the disabled path pays for.
    """
    n = 32
    trajectories = [
        WaypointWalkTrajectory(Point(5.0 + i, 5.0), area=(-40, -40, 40, 40), seed=10 + i).sample(
            5.0, 0.05
        )
        for i in range(n)
    ]
    channel = MultiLinkChannel.for_clients(Point(0, 0), n, ChannelConfig(), seed=9)
    engine = SimulationEngine.for_clients(
        channel,
        trajectories,
        lambda i, trace: RateControlSession(
            AtherosRateAdaptation(), trace, client=f"client-{i}"
        ),
        sample_interval_s=0.1,
    )
    engine.recorder = recorder
    for session in engine.sessions:
        session.bind_recorder(recorder)
    return engine


class TestNullRecorderOverhead:
    def test_disabled_path_overhead_below_5_percent(self):
        """NullRecorder cost = (#enabled checks) x (cost of one check).

        Counting the checks directly and micro-timing one check is robust
        against scheduler jitter, unlike differencing two wall-time runs.
        """
        counting = _CheckCountingRecorder()
        _overhead_engine(counting).run()
        n_checks = counting.checks

        engine = _overhead_engine(NULL_RECORDER)
        t0 = perf_counter()
        engine.run()
        run_s = perf_counter() - t0

        reps = 100_000
        null = NULL_RECORDER
        t0 = perf_counter()
        for _ in range(reps):
            null.enabled
        per_check_s = (perf_counter() - t0) / reps

        overhead = n_checks * per_check_s
        assert n_checks > 0
        assert overhead < 0.05 * run_s, (
            f"{n_checks} checks x {per_check_s:.2e}s = {overhead:.4f}s "
            f"vs run {run_s:.4f}s"
        )


class TestExportFormatting:
    def test_format_counts_values_and_shares(self):
        text = format_counts({"static": 3.0, "micro": 1.0}, title="decisions:")
        assert text.splitlines()[0] == "decisions:"
        assert "static" in text and "75.0%" in text and "25.0%" in text

    def test_format_counts_rejects_empty(self):
        with pytest.raises(ValueError):
            format_counts({})

    def test_summary_of_empty_recorder_is_header_only(self):
        text = render_run_summary(TelemetryRecorder(), title="empty")
        assert text.splitlines()[0] == "empty"
        assert "phase wall time" not in text

    def test_metrics_to_csv_matches_rows(self):
        registry = MetricsRegistry()
        registry.count("frames", 5.0, client="a")
        reader = csv.reader(io.StringIO(metrics_to_csv(registry)))
        assert list(reader) == [
            ["metric", "name", "client", "field", "value"],
            ["counter", "frames", "a", "value", "5.0"],
        ]
