"""Fairness invariants of the comparison harness.

When two schemes are compared on one trace, they must see identical
channel conditions — fading realization, interference bursts, per-frame
delivery randomness — or the comparison measures luck, not policy.
"""

import numpy as np

from repro.channel.perturbations import (
    LinkPerturbations,
    PerturbationConfig,
    trace_seed,
)
from repro.mac.aggregation import FrameTransmitter
from repro.rate.atheros import AtherosRateAdaptation
from repro.rate.simulator import simulate_rate_control
from repro.testing import synthetic_trace


class TestSharedPerturbations:
    def test_same_trace_same_bursts(self):
        trace = synthetic_trace(snr_db=25.0, duration_s=10.0)
        seed = trace_seed(trace.snr_db)
        a = LinkPerturbations(0.0, 10.0, seed=seed)
        b = LinkPerturbations(0.0, 10.0, seed=seed)
        assert a.bursts == b.bursts

    def test_identical_runs_are_reproducible(self):
        trace = synthetic_trace(snr_db=24.0, duration_s=10.0, doppler_hz=8.0)
        first = simulate_rate_control(
            AtherosRateAdaptation(), trace, transmitter=FrameTransmitter(seed=3)
        )
        second = simulate_rate_control(
            AtherosRateAdaptation(), trace, transmitter=FrameTransmitter(seed=3)
        )
        assert first.throughput_mbps == second.throughput_mbps
        assert first.n_frames == second.n_frames

    def test_different_transmitter_seed_changes_outcome(self):
        trace = synthetic_trace(snr_db=18.0, duration_s=10.0, doppler_hz=8.0)
        a = simulate_rate_control(
            AtherosRateAdaptation(), trace, transmitter=FrameTransmitter(seed=1)
        )
        b = simulate_rate_control(
            AtherosRateAdaptation(), trace, transmitter=FrameTransmitter(seed=2)
        )
        assert a.throughput_mbps != b.throughput_mbps

    def test_explicit_perturbation_seed_overrides_trace(self):
        base = synthetic_trace(snr_db=24.0, duration_s=10.0, doppler_hz=8.0)
        shifted = synthetic_trace(snr_db=27.0, duration_s=10.0, doppler_hz=8.0)
        # Different traces, same explicit seed: comparable interference.
        a = simulate_rate_control(
            AtherosRateAdaptation(),
            base,
            transmitter=FrameTransmitter(seed=4),
            perturbation_seed=777,
        )
        b = simulate_rate_control(
            AtherosRateAdaptation(),
            shifted,
            transmitter=FrameTransmitter(seed=4),
            perturbation_seed=777,
        )
        # The stronger link must win under identical perturbations.
        assert b.throughput_mbps > a.throughput_mbps

    def test_burst_schedule_independent_of_fading_draws(self):
        """Bursts must not shift when the fading jitter config changes."""
        config_a = PerturbationConfig(fading_jitter_db=0.0, interference_rate_hz=1.0)
        config_b = PerturbationConfig(fading_jitter_db=3.0, interference_rate_hz=1.0)
        a = LinkPerturbations(0.0, 30.0, config_a, seed=5)
        b = LinkPerturbations(0.0, 30.0, config_b, seed=5)
        # Same seed, same rate: identical burst schedule even though the
        # fading process consumes different amounts of randomness later.
        assert a.bursts == b.bursts


class TestChannelDeterminism:
    def test_link_channel_reproducible(self):
        from repro.channel.config import ChannelConfig
        from repro.channel.model import LinkChannel
        from repro.mobility.trajectory import StaticTrajectory
        from repro.util.geometry import Point

        trajectory = StaticTrajectory(Point(10, 5)).sample(3.0, 0.1)
        a = LinkChannel(Point(0, 0), ChannelConfig(), seed=11).evaluate(
            trajectory.times, trajectory.positions, include_h=True
        )
        b = LinkChannel(Point(0, 0), ChannelConfig(), seed=11).evaluate(
            trajectory.times, trajectory.positions, include_h=True
        )
        assert np.array_equal(a.h, b.h)
        assert np.array_equal(a.snr_db, b.snr_db)

    def test_different_seed_different_channel(self):
        from repro.channel.config import ChannelConfig
        from repro.channel.model import LinkChannel
        from repro.mobility.trajectory import StaticTrajectory
        from repro.util.geometry import Point

        trajectory = StaticTrajectory(Point(10, 5)).sample(1.0, 0.1)
        a = LinkChannel(Point(0, 0), ChannelConfig(), seed=12).evaluate(
            trajectory.times, trajectory.positions, include_h=True
        )
        b = LinkChannel(Point(0, 0), ChannelConfig(), seed=13).evaluate(
            trajectory.times, trajectory.positions, include_h=True
        )
        assert not np.array_equal(a.h, b.h)
