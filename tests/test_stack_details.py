"""Focused tests of the integrated-stack internals."""

import numpy as np
import pytest

from repro.channel.config import ChannelConfig
from repro.mobility.scenarios import macro_scenario, static_scenario
from repro.mobility.trajectory import StaticTrajectory
from repro.util.geometry import Point
from repro.wlan.floorplan import default_office_floorplan
from repro.wlan.multilink import MultiApChannel
from repro.wlan.stack import (
    StackComponents,
    default_stack,
    mobility_aware_stack,
    simulate_stack,
)

# These tests go through the deprecated 1.1 shim entry points on purpose
# (pinning their behaviour); their DeprecationWarnings are expected here
# while CI escalates unexpected ones to errors.
pytestmark = pytest.mark.filterwarnings("ignore:simulate_:DeprecationWarning")

CFG = ChannelConfig(tx_power_dbm=8.0)


def _multi(trajectory, seed=1):
    floorplan = default_office_floorplan()
    return MultiApChannel(floorplan, CFG, seed=seed).evaluate(
        trajectory, sample_interval_s=0.1, include_h=True
    )


class TestStackComposition:
    def test_aware_stack_components(self):
        stack = mobility_aware_stack()
        assert stack.uses_classifier
        assert stack.roaming.name == "controller"
        assert stack.feedback.name == "mobility-aware"

    def test_default_stack_components(self):
        stack = default_stack()
        assert not stack.uses_classifier
        assert stack.roaming.name == "default"
        assert stack.aggregation.name == "fixed-4ms"

    def test_single_stream_ladders(self):
        from repro.phy.mcs import mcs_by_index

        for stack in (mobility_aware_stack(), default_stack()):
            rate = stack.rate
            inner = getattr(rate, "inner", rate)
            assert all(mcs_by_index(m).streams == 1 for m in inner.ladder)


class TestStackBehaviour:
    def test_static_client_few_handoffs_and_feedbacks(self):
        trajectory = StaticTrajectory(Point(8.0, 7.0)).sample(20.0, 0.02)
        multi = _multi(trajectory, seed=2)
        aware = simulate_stack(multi, mobility_aware_stack(), seed=3)
        default = simulate_stack(multi, default_stack(), seed=3)
        assert aware.n_handoffs == 0
        # A static client is classified static -> 2000 ms feedback; the
        # default stack polls every 200 ms.
        assert aware.n_feedbacks < default.n_feedbacks

    def test_goodput_timeline_shape(self):
        trajectory = StaticTrajectory(Point(8.0, 7.0)).sample(10.0, 0.02)
        multi = _multi(trajectory, seed=4)
        result = simulate_stack(multi, default_stack(), seed=5)
        assert result.goodput_mbps.shape == multi.times.shape
        assert np.all(result.goodput_mbps >= 0.0)

    def test_walk_produces_estimates_of_both_families(self):
        scenario = macro_scenario(Point(5, 5), area=(2, 2, 38, 23), seed=6)
        trajectory = scenario.sample(30.0, 0.02)
        multi = _multi(trajectory, seed=6)
        aware = simulate_stack(multi, mobility_aware_stack(), seed=7)
        modes = {e.mode.value for e in aware.estimates}
        assert modes & {"micro", "macro"}  # device mobility was seen

    def test_tcp_below_udp(self):
        trajectory = StaticTrajectory(Point(8.0, 7.0)).sample(10.0, 0.02)
        multi = _multi(trajectory, seed=8)
        result = simulate_stack(multi, default_stack(), seed=9)
        assert result.tcp_throughput_mbps() <= result.mean_throughput_mbps + 1e-9

    def test_deterministic_given_seed(self):
        trajectory = StaticTrajectory(Point(8.0, 7.0)).sample(8.0, 0.02)
        multi = _multi(trajectory, seed=10)
        a = simulate_stack(multi, default_stack(), seed=11)
        b = simulate_stack(multi, default_stack(), seed=11)
        assert a.mean_throughput_mbps == b.mean_throughput_mbps


class TestMixedComposition:
    def test_partial_aware_stack_runs(self):
        """Users can mix aware and fixed components freely."""
        from repro.aggregation.policy import MobilityAwareAggregation
        from repro.beamforming.feedback import FixedPeriodFeedback
        from repro.rate.atheros import AtherosRateAdaptation
        from repro.roaming.schemes import DefaultClientRoaming
        from repro.phy.mcs import single_stream_mcs

        stack = StackComponents(
            roaming=DefaultClientRoaming(),
            rate=AtherosRateAdaptation(ladder=single_stream_mcs()),
            aggregation=MobilityAwareAggregation(),
            feedback=FixedPeriodFeedback(200.0),
            uses_classifier=True,
        )
        trajectory = StaticTrajectory(Point(8.0, 7.0)).sample(8.0, 0.02)
        multi = _multi(trajectory, seed=12)
        result = simulate_stack(multi, stack, seed=13)
        assert result.mean_throughput_mbps > 0.0
