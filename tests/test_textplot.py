"""Tests for the ASCII plot renderers."""

import numpy as np
import pytest

from repro.util.stats import EmpiricalCDF
from repro.util.textplot import render_bars, render_cdf, render_series


class TestRenderCdf:
    def _cdfs(self):
        rng = np.random.default_rng(0)
        return {
            "low": EmpiricalCDF(rng.normal(0.0, 1.0, 200).tolist()),
            "high": EmpiricalCDF(rng.normal(5.0, 1.0, 200).tolist()),
        }

    def test_contains_title_and_legend(self):
        chart = render_cdf(self._cdfs(), title="demo")
        assert chart.startswith("demo")
        assert "o low" in chart
        assert "x high" in chart

    def test_fixed_width(self):
        chart = render_cdf(self._cdfs(), width=40, height=8)
        body_lines = [l for l in chart.splitlines() if "|" in l]
        assert len(body_lines) == 8
        assert all(len(l) <= 40 + 7 for l in body_lines)

    def test_separated_series_occupy_different_columns(self):
        chart = render_cdf(self._cdfs(), width=60, height=10)
        # The 0.5-probability row should show 'o' left of 'x'.
        mid_rows = [l for l in chart.splitlines() if "|" in l]
        middle = mid_rows[len(mid_rows) // 2]
        assert "o" in middle and "x" in middle
        assert middle.index("o") < middle.index("x")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_cdf({})
        with pytest.raises(ValueError):
            render_cdf({"a": EmpiricalCDF([])})

    def test_degenerate_range_handled(self):
        chart = render_cdf({"flat": EmpiricalCDF([3.0, 3.0, 3.0])})
        assert "flat" in chart


class TestRenderBars:
    def test_proportional_lengths(self):
        chart = render_bars({"a": 10.0, "b": 20.0}, width=20)
        line_a = next(l for l in chart.splitlines() if l.startswith("a"))
        line_b = next(l for l in chart.splitlines() if l.startswith("b"))
        assert line_b.count("#") > line_a.count("#")

    def test_unit_suffix(self):
        chart = render_bars({"x": 5.0}, unit=" Mbps")
        assert "5.0 Mbps" in chart

    def test_zero_value(self):
        chart = render_bars({"zero": 0.0, "one": 1.0})
        assert "zero" in chart


class TestRenderSeries:
    def test_two_series(self):
        x = [0.0, 1.0, 2.0, 3.0]
        chart = render_series(
            {"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]}, x, title="trend"
        )
        assert "trend" in chart
        assert "o up" in chart and "x down" in chart

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_series({"bad": [1, 2]}, [0.0, 1.0, 2.0])
