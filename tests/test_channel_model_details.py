"""Deeper channel-model behaviour tests (mechanism-level)."""

import numpy as np
import pytest

from repro.channel.config import CONFIG_20MHZ, ChannelConfig
from repro.channel.model import LinkChannel
from repro.core.similarity import csi_similarity_series
from repro.mobility.environment import EnvironmentActivity, EnvironmentProcess
from repro.mobility.trajectory import StaticTrajectory
from repro.util.geometry import Point

AP = Point(0.0, 0.0)


def _evaluate(position, duration=5.0, dt=0.05, seed=1, config=None, environment=None):
    trajectory = StaticTrajectory(position).sample(duration, dt)
    link = LinkChannel(AP, config or ChannelConfig(), environment=environment, seed=seed)
    return link.evaluate(trajectory.times, trajectory.positions, include_h=True)


class TestFrequencySelectivity:
    def test_channel_varies_across_subcarriers(self):
        trace = _evaluate(Point(10, 5))
        gains = np.abs(trace.h[0, :, 0, 0])
        assert np.std(gains) / np.mean(gains) > 0.05  # real multipath fades

    def test_higher_rician_k_flattens_the_channel(self):
        flat = _evaluate(Point(10, 5), config=ChannelConfig(rician_k_db=15.0), seed=2)
        selective = _evaluate(Point(10, 5), config=ChannelConfig(rician_k_db=-10.0), seed=2)
        def spread(trace):
            gains = np.abs(trace.h[0, :, 0, 0])
            return np.std(gains) / np.mean(gains)
        assert spread(flat) < spread(selective)

    def test_effective_snr_tracks_selectivity(self):
        flat = _evaluate(Point(10, 5), config=ChannelConfig(rician_k_db=15.0), seed=3)
        selective = _evaluate(Point(10, 5), config=ChannelConfig(rician_k_db=-10.0), seed=3)
        flat_gap = np.mean(flat.snr_db - flat.effective_snr_db)
        selective_gap = np.mean(selective.snr_db - selective.effective_snr_db)
        assert selective_gap > flat_gap  # deep notches cost effective SNR


class TestBandwidthConfigs:
    def test_20mhz_noise_floor_lower(self):
        wide = _evaluate(Point(10, 5), seed=4)
        narrow = _evaluate(Point(10, 5), config=CONFIG_20MHZ, seed=4)
        # Same geometry: the 20 MHz receiver integrates half the noise.
        assert np.mean(narrow.snr_db) > np.mean(wide.snr_db) + 2.0

    def test_subcarrier_count_respected(self):
        config = ChannelConfig(n_subcarriers=30)
        trace = _evaluate(Point(10, 5), config=config, seed=5)
        assert trace.h.shape[1] == 30


class TestAntennaConfigs:
    def test_antenna_dimensions(self):
        config = ChannelConfig(n_tx=4, n_rx=1)
        trace = _evaluate(Point(10, 5), config=config, seed=6)
        assert trace.h.shape[2:] == (4, 1)

    def test_single_rx_condition_degenerate(self):
        config = ChannelConfig(n_rx=1)
        trace = _evaluate(Point(10, 5), config=config, seed=7)
        # Rank-one channel: the "second singular value" is numerically nil,
        # so the condition number saturates very high.
        assert np.all(trace.mimo_condition_db > 30.0)


class TestEnvironmentMechanism:
    def test_weak_decorrelates_less_than_strong(self):
        weak_env = EnvironmentProcess.from_activity(EnvironmentActivity.WEAK)
        strong_env = EnvironmentProcess.from_activity(EnvironmentActivity.STRONG)
        weak = _evaluate(Point(10, 5), duration=30.0, environment=weak_env, seed=8)
        strong = _evaluate(Point(10, 5), duration=30.0, environment=strong_env, seed=8)
        lag = 10  # 500 ms
        weak_sim = np.mean(csi_similarity_series(weak.h, lag=lag))
        strong_sim = np.mean(csi_similarity_series(strong.h, lag=lag))
        assert weak_sim > strong_sim

    def test_blockage_depth_bounded(self):
        env = EnvironmentProcess.from_activity(EnvironmentActivity.STRONG)
        trace = _evaluate(Point(10, 5), duration=60.0, environment=env, seed=9)
        swing = np.max(trace.rssi_dbm) - np.min(trace.rssi_dbm)
        assert 2.0 < swing < 25.0  # visible dips, not absurd ones


class TestCsiMeasurement:
    def test_smoothing_reduces_noise(self):
        trace = _evaluate(Point(25, 5), seed=10)  # weak link: visible noise
        raw = trace.measured_csi(1, smooth_subcarriers=1)
        smooth = trace.measured_csi(1, smooth_subcarriers=5)
        raw_error = np.mean(np.abs(raw - trace.h) ** 2)
        smooth_error = np.mean(np.abs(smooth - trace.h) ** 2)
        assert smooth_error < raw_error * 0.6

    def test_independent_noise_per_rng(self):
        trace = _evaluate(Point(10, 5), seed=11)
        a = trace.measured_csi(1)
        b = trace.measured_csi(2)
        assert not np.array_equal(a, b)
