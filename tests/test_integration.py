"""Integration tests: full sensing -> classification -> protocol pipelines."""

import numpy as np
import pytest

from repro.experiments.common import (
    classification_decisions,
    run_classification,
    sense_and_classify,
    standard_client_positions,
)
from repro.mobility.environment import EnvironmentActivity
from repro.mobility.modes import Heading, MobilityMode
from repro.mobility.scenarios import (
    circular_scenario,
    environmental_scenario,
    macro_scenario,
    micro_scenario,
    static_scenario,
)
from repro.util.geometry import Point

AP = Point(0.0, 0.0)
CLIENT = Point(12.0, 6.0)


class TestClassificationPipeline:
    """End-to-end: trajectory -> channel -> CSI/ToF -> classifier -> score."""

    def test_static_client_classified_static(self):
        outcome = classification_decisions(
            static_scenario(CLIENT), AP, duration_s=40.0, grace_s=5.0, seed=1
        )
        assert outcome.mode_accuracy() > 0.9

    def test_environmental_client(self):
        outcome = classification_decisions(
            environmental_scenario(CLIENT, EnvironmentActivity.STRONG),
            AP,
            duration_s=40.0,
            grace_s=5.0,
            seed=2,
        )
        assert outcome.mode_accuracy() > 0.75

    def test_micro_client(self):
        outcome = classification_decisions(
            micro_scenario(CLIENT, seed=3), AP, duration_s=40.0, grace_s=5.0, seed=3
        )
        assert outcome.mode_accuracy() > 0.8

    def test_macro_client_with_heading(self):
        scenario = macro_scenario(CLIENT, anchor=AP, approach_retreat=True, seed=4)
        outcome = classification_decisions(
            scenario, AP, duration_s=80.0, grace_s=6.5, seed=4
        )
        assert outcome.accuracy() > 0.75
        macro_estimates = [
            est for est, _ in outcome.decisions if est.mode == MobilityMode.MACRO
        ]
        headings = {est.heading for est in macro_estimates}
        assert Heading.TOWARDS in headings and Heading.AWAY in headings

    def test_circular_walk_misclassified_as_micro(self):
        """The Section-9 limitation must reproduce, not silently vanish."""
        outcome = classification_decisions(
            circular_scenario(AP, radius=10.0), AP, duration_s=40.0, grace_s=5.0, seed=5
        )
        micro_fraction = np.mean(
            [est.mode == MobilityMode.MICRO for est, _ in outcome.decisions]
        )
        assert micro_fraction > 0.7

    def test_confusion_matrix_batch(self):
        scenarios = [
            static_scenario(CLIENT),
            micro_scenario(CLIENT, seed=6),
        ]
        matrix = run_classification(scenarios, AP, duration_s=30.0, seed=6)
        assert matrix.accuracy(MobilityMode.STATIC) > 0.85
        assert matrix.accuracy(MobilityMode.MICRO) > 0.7

    def test_standard_positions_respect_bounds(self):
        points = standard_client_positions(20, AP, min_distance_m=5.0, max_distance_m=20.0, seed=7)
        for p in points:
            d = np.hypot(p.x, p.y)
            assert 5.0 <= d <= 20.0


class TestSenseAndClassify:
    def test_returns_aligned_artifacts(self):
        scenario = micro_scenario(CLIENT, seed=8)
        sensed = sense_and_classify(scenario, AP, duration_s=20.0, seed=8)
        assert sensed.trace.h is not None
        assert len(sensed.truths) == len(sensed.trajectory)
        assert len(sensed.hints) > 10
        times = [h.time_s for h in sensed.hints]
        assert times == sorted(times)

    def test_hint_modes_match_scenario(self):
        scenario = micro_scenario(CLIENT, seed=9)
        sensed = sense_and_classify(scenario, AP, duration_s=30.0, seed=9)
        settled = [h for h in sensed.hints if h.time_s > 8.0]
        micro_fraction = np.mean([h.mode == MobilityMode.MICRO for h in settled])
        assert micro_fraction > 0.7

    def test_coarse_grid_adjusts_tof_cadence(self):
        scenario = macro_scenario(CLIENT, anchor=AP, approach_retreat=True, seed=10)
        sensed = sense_and_classify(scenario, AP, duration_s=40.0, dt_s=0.05, seed=10)
        macro_fraction = np.mean(
            [h.mode == MobilityMode.MACRO for h in sensed.hints if h.time_s > 10.0]
        )
        # Even on a 50 ms grid the trend detector must fire.
        assert macro_fraction > 0.4
