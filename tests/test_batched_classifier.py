"""Equivalence suite: the arrays-of-clients path vs N scalar pipelines.

The contract under test (see ``docs/architecture.md``, "Arrays-of-clients
execution model"): for any seeded scenario — mixed static/mobile clients,
NaN bursts, missing CSI steps, ``max_csi_gap_s`` resets, fault-plan
degraded streams, chaos-quarantined members — a
:class:`repro.core.BatchedMobilityClassifier` (and a
:class:`repro.sim.BatchedSensingSession` cohort run) must produce output
*element-wise identical* to N independent scalar pipelines: same
:class:`MobilityEstimate` sequences, same per-client counters, same
per-client event subsequences.  Only the cross-client interleaving of
events within a step may differ.
"""

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BatchedMobilityClassifier, MobilityClassifier
from repro.core.classifier import ClassifierConfig
from repro.core.tof_trend import ToFTrendConfig
from repro.faults import DropFault, FaultPlan, NaNFault, SessionCrashFault
from repro.sim import (
    BatchedSensingSession,
    FailureRecord,
    SensingSession,
    SimulationEngine,
    SupervisorConfig,
    TimeGrid,
)
from repro.telemetry import TelemetryRecorder

# --------------------------------------------------------------- scenarios


@dataclass
class Scenario:
    labels: List[str]
    grid_times: np.ndarray
    csi_by_client: List[List[Optional[np.ndarray]]]
    tof_times_by_client: List[np.ndarray]
    tof_readings_by_client: List[np.ndarray]
    config: ClassifierConfig


def make_scenario(
    seed: int,
    n_clients: int,
    n_steps: int = 36,
    n_subcarriers: int = 12,
    time_aware: bool = False,
    max_gap_s: Optional[float] = None,
    none_p: float = 0.08,
    nan_p: float = 0.05,
) -> Scenario:
    """Seeded mixed-fleet scenario: static, environmental and mobile clients."""
    rng = np.random.default_rng(seed)
    grid_dt = 0.5
    grid_times = np.arange(n_steps) * grid_dt
    csi_by_client: List[List[Optional[np.ndarray]]] = []
    tof_times_by_client: List[np.ndarray] = []
    tof_readings_by_client: List[np.ndarray] = []
    for i in range(n_clients):
        kind = i % 3  # 0: static, 1: walking away, 2: environmental churn
        base = rng.normal(1.0, 0.3, n_subcarriers) + 1j * rng.normal(
            0.0, 0.3, n_subcarriers
        )
        drift = (0.01, 0.25, 0.08)[kind]
        csi: List[Optional[np.ndarray]] = []
        for _ in range(n_steps):
            if rng.random() < none_p:
                csi.append(None)
                continue
            base = base + drift * (
                rng.normal(0, 1, n_subcarriers) + 1j * rng.normal(0, 1, n_subcarriers)
            )
            sample = base.copy()
            if rng.random() < nan_p:
                sample[rng.integers(0, n_subcarriers)] = np.nan
            csi.append(sample)
        t = np.arange(0.0, n_steps * grid_dt, 0.02)
        if kind == 1:
            v = 200.0 + 0.6 * t + rng.normal(0, 0.1, len(t))
        else:
            v = 200.0 + rng.normal(0, 0.2, len(t))
        v = np.where(rng.random(len(t)) < nan_p, np.nan, v)
        if time_aware:
            # Irregular sampling: thin the stream so some median periods
            # go sparse or empty (the PR 3 gap semantics under test).
            keep = rng.random(len(t)) > 0.35
            t, v = t[keep], v[keep]
        csi_by_client.append(csi)
        tof_times_by_client.append(t)
        tof_readings_by_client.append(np.asarray(v, dtype=float))
    config = ClassifierConfig(
        max_csi_gap_s=max_gap_s,
        tof=ToFTrendConfig(time_aware=time_aware),
    )
    return Scenario(
        labels=[f"client-{i:02d}" for i in range(n_clients)],
        grid_times=grid_times,
        csi_by_client=csi_by_client,
        tof_times_by_client=tof_times_by_client,
        tof_readings_by_client=tof_readings_by_client,
        config=config,
    )


# ------------------------------------------------------------- comparators


def per_client_counters(recorder: TelemetryRecorder) -> Dict[Tuple[str, str], float]:
    out: Dict[Tuple[str, str], float] = {}
    for metric, name, client, field, value in recorder.metrics.rows():
        if metric == "counter" and client:
            out[(name, client)] = value
    return out


def per_client_events(
    recorder: TelemetryRecorder, labels: Sequence[str]
) -> Dict[str, List[Tuple[Any, ...]]]:
    kinds = ("classifier_verdict", "hint_transition", "sensing_gap", "sampling_gap")
    out: Dict[str, List[Tuple[Any, ...]]] = {label: [] for label in labels}
    for event in recorder.events:
        if event.client in out and event.kind in kinds:
            out[event.client].append(
                (event.kind, event.time_s, tuple(sorted(event.fields.items())))
            )
    return out


def assert_estimates_equal(ref: Sequence[Any], got: Sequence[Any], label: str) -> None:
    assert len(ref) == len(got), f"{label}: {len(ref)} vs {len(got)} estimates"
    for step, (a, b) in enumerate(zip(ref, got)):
        assert a == b, f"{label} step {step}: {a} != {b}"


# --------------------------------------------------- classifier-level runs


def run_scalar_classifiers(scenario: Scenario) -> Tuple[List[List[Any]], TelemetryRecorder]:
    recorder = TelemetryRecorder()
    histories: List[List[Any]] = []
    for i, label in enumerate(scenario.labels):
        classifier = MobilityClassifier(scenario.config)
        classifier.recorder = recorder
        classifier.telemetry_client = label
        times = scenario.tof_times_by_client[i]
        readings = scenario.tof_readings_by_client[i]
        cursor = 0
        history: List[Any] = []
        for step, time_s in enumerate(scenario.grid_times):
            due = int(np.searchsorted(times, time_s, side="right"))
            for j in range(cursor, due):
                classifier.push_tof(float(times[j]), float(readings[j]))
            cursor = due
            sample = scenario.csi_by_client[i][step]
            if sample is not None:
                history.append(classifier.push_csi(float(time_s), sample))
        histories.append(history)
    return histories, recorder


def run_batched_classifier(
    scenario: Scenario, dense: bool
) -> Tuple[List[List[Any]], TelemetryRecorder]:
    recorder = TelemetryRecorder()
    classifier = BatchedMobilityClassifier(list(scenario.labels), scenario.config)
    classifier.recorder = recorder
    n = len(scenario.labels)
    cursors = [0] * n
    histories: List[List[Any]] = [[] for _ in range(n)]
    for step, time_s in enumerate(scenario.grid_times):
        chunks: List[Optional[Tuple[np.ndarray, np.ndarray]]] = []
        for i in range(n):
            times = scenario.tof_times_by_client[i]
            due = int(np.searchsorted(times, time_s, side="right"))
            chunks.append(
                (times[cursors[i] : due], scenario.tof_readings_by_client[i][cursors[i] : due])
            )
            cursors[i] = due
        classifier.push_tof(chunks)
        samples = [scenario.csi_by_client[i][step] for i in range(n)]
        if dense:
            # Pack present samples into one slab and mask the absent ones —
            # the layout BatchedSensingSession feeds the classifier.
            shape = next((s.shape for s in samples if s is not None), None)
            if shape is None:
                continue
            slab = np.zeros((n, *shape), dtype=complex)
            mask = np.zeros(n, dtype=bool)
            for i, sample in enumerate(samples):
                if sample is not None:
                    slab[i] = sample
                    mask[i] = True
            estimates = classifier.push_csi(float(time_s), slab, mask=mask)
        else:
            estimates = classifier.push_csi(float(time_s), samples)
        for i, estimate in enumerate(estimates):
            if samples[i] is not None:
                histories[i].append(estimate)
    return histories, recorder


def check_classifier_equivalence(scenario: Scenario, dense: bool) -> None:
    ref_histories, ref_recorder = run_scalar_classifiers(scenario)
    got_histories, got_recorder = run_batched_classifier(scenario, dense=dense)
    for label, ref, got in zip(scenario.labels, ref_histories, got_histories):
        assert_estimates_equal(ref, got, label)
    assert per_client_counters(ref_recorder) == per_client_counters(got_recorder)
    assert per_client_events(ref_recorder, scenario.labels) == per_client_events(
        got_recorder, scenario.labels
    )


# ------------------------------------------------------- engine-level runs


def run_scalar_engine(
    scenario: Scenario,
    faults: Optional[Dict[str, FaultPlan]] = None,
    chaos: Optional[Dict[str, SessionCrashFault]] = None,
    supervisor: Optional[SupervisorConfig] = None,
) -> Tuple[Dict[str, Any], TelemetryRecorder]:
    recorder = TelemetryRecorder()
    engine = SimulationEngine(
        TimeGrid(scenario.grid_times), recorder=recorder, supervisor=supervisor
    )
    for i, label in enumerate(scenario.labels):
        session: Any = SensingSession(
            MobilityClassifier(scenario.config),
            scenario.csi_by_client[i],
            scenario.tof_times_by_client[i],
            scenario.tof_readings_by_client[i],
            client=label,
            faults=(faults or {}).get(label),
        )
        if chaos and label in chaos:
            session = chaos[label].wrap(session)
        engine.add(session)
    return engine.run(), recorder


def run_batched_engine(
    scenario: Scenario,
    faults: Optional[Dict[str, FaultPlan]] = None,
    chaos: Optional[Dict[str, SessionCrashFault]] = None,
    supervisor: Optional[SupervisorConfig] = None,
) -> Tuple[Dict[str, Any], TelemetryRecorder]:
    recorder = TelemetryRecorder()
    engine = SimulationEngine(
        TimeGrid(scenario.grid_times), recorder=recorder, supervisor=supervisor
    )
    classifier = BatchedMobilityClassifier(list(scenario.labels), scenario.config)
    engine.add(
        BatchedSensingSession(
            classifier,
            scenario.csi_by_client,
            scenario.tof_times_by_client,
            scenario.tof_readings_by_client,
            faults=faults,
            member_faults=chaos,
        )
    )
    return engine.run(), recorder


def check_engine_equivalence(
    scenario: Scenario,
    faults: Optional[Dict[str, FaultPlan]] = None,
    chaos: Optional[Dict[str, SessionCrashFault]] = None,
    supervisor: Optional[SupervisorConfig] = None,
) -> None:
    ref_results, ref_recorder = run_scalar_engine(scenario, faults, chaos, supervisor)
    got_results, got_recorder = run_batched_engine(scenario, faults, chaos, supervisor)
    assert set(ref_results) == set(got_results) == set(scenario.labels)
    for label in scenario.labels:
        ref, got = ref_results[label], got_results[label]
        if isinstance(ref, FailureRecord):
            assert ref == got, f"{label}: {ref} != {got}"
        else:
            assert_estimates_equal(ref, got, label)
    assert per_client_counters(ref_recorder) == per_client_counters(got_recorder)
    assert per_client_events(ref_recorder, scenario.labels) == per_client_events(
        got_recorder, scenario.labels
    )


# ----------------------------------------------------------------- tests


class TestClassifierEquivalence:
    """BatchedMobilityClassifier vs N independent scalar classifiers."""

    @pytest.mark.parametrize("dense", [True, False], ids=["dense-slab", "list-path"])
    @pytest.mark.parametrize("max_gap_s", [None, 1.2], ids=["no-gap-cap", "gap-cap"])
    def test_count_based(self, dense, max_gap_s):
        scenario = make_scenario(seed=7, n_clients=6, max_gap_s=max_gap_s)
        check_classifier_equivalence(scenario, dense=dense)

    @pytest.mark.parametrize("dense", [True, False], ids=["dense-slab", "list-path"])
    def test_time_aware(self, dense):
        scenario = make_scenario(seed=11, n_clients=6, time_aware=True, max_gap_s=1.2)
        check_classifier_equivalence(scenario, dense=dense)

    def test_single_client_matches_scalar_view(self):
        scenario = make_scenario(seed=3, n_clients=1)
        check_classifier_equivalence(scenario, dense=True)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_clients=st.integers(min_value=1, max_value=9),
        time_aware=st.booleans(),
        gap_cap=st.booleans(),
    )
    def test_property_random_scenarios(self, seed, n_clients, time_aware, gap_cap):
        scenario = make_scenario(
            seed=seed,
            n_clients=n_clients,
            n_steps=24,
            time_aware=time_aware,
            max_gap_s=1.2 if gap_cap else None,
        )
        check_classifier_equivalence(scenario, dense=True)


class TestEngineEquivalence:
    """BatchedSensingSession cohort runs vs N scalar SensingSession runs."""

    def test_clean_run(self):
        scenario = make_scenario(seed=21, n_clients=7, max_gap_s=1.5)
        check_engine_equivalence(scenario)

    def test_time_aware_run(self):
        scenario = make_scenario(seed=23, n_clients=5, time_aware=True, max_gap_s=1.5)
        check_engine_equivalence(scenario)

    def test_fault_plan_degraded_streams(self):
        scenario = make_scenario(seed=29, n_clients=6)
        faults = {
            scenario.labels[1]: FaultPlan([DropFault(0.3), NaNFault(0.2)], seed=101),
            scenario.labels[4]: FaultPlan([NaNFault(0.5)], seed=102),
        }
        # Identical FaultPlan construction on both sides: plans are seeded,
        # so two instances built from the same spec corrupt identically.
        scalar_faults = {
            scenario.labels[1]: FaultPlan([DropFault(0.3), NaNFault(0.2)], seed=101),
            scenario.labels[4]: FaultPlan([NaNFault(0.5)], seed=102),
        }
        ref_results, ref_recorder = run_scalar_engine(scenario, faults=scalar_faults)
        got_results, got_recorder = run_batched_engine(scenario, faults=faults)
        for label in scenario.labels:
            assert_estimates_equal(ref_results[label], got_results[label], label)
        assert per_client_counters(ref_recorder) == per_client_counters(got_recorder)
        assert per_client_events(ref_recorder, scenario.labels) == per_client_events(
            got_recorder, scenario.labels
        )

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_clients=st.integers(min_value=2, max_value=8),
    )
    def test_property_random_engine_runs(self, seed, n_clients):
        scenario = make_scenario(seed=seed, n_clients=n_clients, n_steps=24, max_gap_s=1.2)
        check_engine_equivalence(scenario)


class TestQuarantineEquivalence:
    """Masked members vs quarantined scalar sessions — survivors bit-identical."""

    def _chaos(self, scenario: Scenario, label: str, **kwargs) -> Dict[str, SessionCrashFault]:
        return {label: SessionCrashFault(**kwargs)}

    def test_isolate_masks_member_and_preserves_survivors(self):
        scenario = make_scenario(seed=31, n_clients=6)
        crasher = scenario.labels[2]
        supervisor = SupervisorConfig(policy="isolate")
        check_engine_equivalence(
            scenario,
            chaos=self._chaos(scenario, crasher, phase="classify", at_step=9),
            supervisor=supervisor,
        )

    def test_isolate_quarantine_record_matches(self):
        scenario = make_scenario(seed=37, n_clients=5)
        crasher = scenario.labels[0]
        chaos = self._chaos(scenario, crasher, phase="sense", at_step=4)
        ref_results, _ = run_scalar_engine(
            scenario, chaos=chaos, supervisor=SupervisorConfig(policy="isolate")
        )
        got_results, _ = run_batched_engine(
            scenario, chaos=chaos, supervisor=SupervisorConfig(policy="isolate")
        )
        record = got_results[crasher]
        assert isinstance(record, FailureRecord)
        assert record == ref_results[crasher]
        assert record.exception_type == "InjectedFault"
        assert record.phase == "sense"
        assert record.step == 4

    def test_retry_suspend_resume_round_trip(self):
        scenario = make_scenario(seed=41, n_clients=6)
        crasher = scenario.labels[3]
        supervisor = SupervisorConfig(
            policy="retry", max_retries=3, backoff_base_s=0.6, backoff_factor=2.0
        )
        check_engine_equivalence(
            scenario,
            chaos=self._chaos(scenario, crasher, phase="classify", at_step=6, n_crashes=2),
            supervisor=supervisor,
        )

    def test_retry_escalates_to_quarantine_identically(self):
        scenario = make_scenario(seed=43, n_clients=5)
        crasher = scenario.labels[1]
        supervisor = SupervisorConfig(
            policy="retry", max_retries=1, backoff_base_s=0.5, backoff_factor=2.0
        )
        check_engine_equivalence(
            scenario,
            chaos=self._chaos(scenario, crasher, phase="adapt", at_step=3, n_crashes=5),
            supervisor=supervisor,
        )

    def test_two_members_crashing(self):
        scenario = make_scenario(seed=47, n_clients=7)
        chaos = {
            scenario.labels[1]: SessionCrashFault(phase="classify", at_step=5),
            scenario.labels[5]: SessionCrashFault(phase="sense", at_step=11),
        }
        check_engine_equivalence(
            scenario, chaos=chaos, supervisor=SupervisorConfig(policy="isolate")
        )

    def test_seeded_chaos_schedule(self):
        scenario = make_scenario(seed=53, n_clients=6)
        chaos = {scenario.labels[4]: SessionCrashFault(seed=99, n_crashes=1)}
        check_engine_equivalence(
            scenario, chaos=chaos, supervisor=SupervisorConfig(policy="isolate")
        )

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        crasher=st.integers(min_value=0, max_value=4),
        step=st.integers(min_value=1, max_value=20),
        phase=st.sampled_from(["sense", "classify", "adapt"]),
        policy=st.sampled_from(["isolate", "retry"]),
    )
    def test_property_random_chaos(self, seed, crasher, step, phase, policy):
        scenario = make_scenario(seed=seed, n_clients=5, n_steps=24)
        chaos = {scenario.labels[crasher]: SessionCrashFault(phase=phase, at_step=step)}
        check_engine_equivalence(
            scenario, chaos=chaos, supervisor=SupervisorConfig(policy=policy)
        )


class TestBatchedSessionValidation:
    """Construction-time guard rails of the cohort session."""

    def test_member_fault_on_start_rejected(self):
        scenario = make_scenario(seed=2, n_clients=2)
        classifier = BatchedMobilityClassifier(list(scenario.labels))
        with pytest.raises(ValueError, match="engine step phases"):
            BatchedSensingSession(
                classifier,
                scenario.csi_by_client,
                scenario.tof_times_by_client,
                scenario.tof_readings_by_client,
                member_faults={scenario.labels[0]: SessionCrashFault(phase="start")},
            )

    def test_unknown_fault_label_rejected(self):
        scenario = make_scenario(seed=2, n_clients=2)
        classifier = BatchedMobilityClassifier(list(scenario.labels))
        with pytest.raises(ValueError, match="unknown"):
            BatchedSensingSession(
                classifier,
                scenario.csi_by_client,
                scenario.tof_times_by_client,
                scenario.tof_readings_by_client,
                member_faults={"nobody": SessionCrashFault(phase="classify", at_step=1)},
            )

    def test_stream_count_mismatch_rejected(self):
        scenario = make_scenario(seed=2, n_clients=3)
        classifier = BatchedMobilityClassifier(list(scenario.labels))
        with pytest.raises(ValueError):
            BatchedSensingSession(
                classifier,
                scenario.csi_by_client[:2],
                scenario.tof_times_by_client,
                scenario.tof_readings_by_client,
            )

    def test_shape_disagreement_raises(self):
        classifier = BatchedMobilityClassifier(2)
        with pytest.raises(ValueError, match="CSI shapes disagree"):
            classifier.push_csi(0.0, [np.ones(8), np.ones(12)])

    def test_cohort_results_keyed_by_member(self):
        scenario = make_scenario(seed=5, n_clients=3)
        results, _ = run_batched_engine(scenario)
        assert sorted(results) == sorted(scenario.labels)
        assert all(isinstance(v, list) for v in results.values())

    def test_duplicate_member_label_rejected_by_engine(self):
        scenario = make_scenario(seed=5, n_clients=2)
        engine = SimulationEngine(TimeGrid(scenario.grid_times))
        classifier = BatchedMobilityClassifier(list(scenario.labels))
        engine.add(
            BatchedSensingSession(
                classifier,
                scenario.csi_by_client,
                scenario.tof_times_by_client,
                scenario.tof_readings_by_client,
            )
        )
        clash = SensingSession(
            MobilityClassifier(scenario.config), scenario.csi_by_client[0],
            client=scenario.labels[0],
        )
        with pytest.raises(ValueError, match="duplicate session name"):
            engine.add(clash)
