"""Unit tests for the deterministic fault-injection harness."""

import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig, MobilityClassifier
from repro.core.tof_trend import ToFTrendConfig
from repro.faults import (
    ChannelEvalFault,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultPlan,
    InjectedFault,
    NaNFault,
    RecorderFault,
    SessionCrashFault,
)
from repro.mobility.modes import MobilityMode
from repro.sim import SensingSession, SimulationEngine, TimeGrid
from repro.telemetry import TelemetryRecorder


def _stream(n=200, dt=0.02):
    times = np.arange(n) * dt
    values = 100.0 + 0.01 * times
    return times, values


class TestDropFault:
    def test_rate_zero_is_identity(self):
        times, values = _stream()
        plan = FaultPlan([DropFault(0.0)], seed=1)
        t, v = plan.apply_stream(times, values)
        np.testing.assert_array_equal(t, times)
        np.testing.assert_array_equal(v, values)
        assert plan.stats["faults.stream.drop.dropped"] == 0

    def test_rate_one_drops_everything(self):
        times, values = _stream(50)
        t, v = FaultPlan([DropFault(1.0)], seed=1).apply_stream(times, values)
        assert len(t) == len(v) == 0

    def test_expected_fraction_dropped(self):
        times, values = _stream(2000)
        plan = FaultPlan([DropFault(0.3)], seed=2)
        t, _ = plan.apply_stream(times, values)
        assert 0.25 < 1 - len(t) / len(times) < 0.35

    def test_grid_drops_become_none(self):
        samples = [np.ones(4) * i for i in range(100)]
        plan = FaultPlan([DropFault(0.5)], seed=3)
        out = plan.apply_grid(samples)
        n_none = sum(1 for s in out if s is None)
        assert n_none == plan.stats["faults.grid.drop.dropped"]
        assert 30 < n_none < 70

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            DropFault(1.5)


class TestDuplicateFault:
    def test_stream_duplicates_at_same_timestamp(self):
        times, values = _stream(100)
        plan = FaultPlan([DuplicateFault(0.2)], seed=4)
        t, v = plan.apply_stream(times, values)
        extra = plan.stats["faults.stream.duplicate.duplicated"]
        assert len(t) == len(times) + extra
        assert extra > 0
        # Time stays non-decreasing; duplicates collide exactly.
        assert np.all(np.diff(t) >= 0)

    def test_grid_redelivers_previous_sample(self):
        samples = [np.full(4, float(i)) for i in range(200)]
        plan = FaultPlan([DuplicateFault(0.3)], seed=5)
        out = plan.apply_grid(samples)
        stale = sum(
            1
            for i in range(1, len(out))
            if out[i] is not None and out[i][0] == samples[i - 1][0]
        )
        assert stale == plan.stats["faults.grid.duplicate.duplicated"] > 0


class TestDelayFault:
    def test_stream_stays_sorted(self):
        times, values = _stream(300)
        plan = FaultPlan([DelayFault(0.25, delay_s=0.5)], seed=6)
        t, v = plan.apply_stream(times, values)
        assert len(t) == len(times)  # nothing lost, only late
        assert np.all(np.diff(t) >= 0)
        assert plan.stats["faults.stream.delay.delayed"] > 0

    def test_grid_delay_fills_only_empty_slots(self):
        samples = [np.full(2, 1.0), None, np.full(2, 3.0)]
        fault = DelayFault(1.0, delay_steps=1)  # every sample delayed
        out, stats = fault.apply_grid(samples, np.random.default_rng(0))
        # Sample 0 lands in the empty slot 1; sample 2 falls off the end.
        assert out[0] is None
        assert out[1][0] == 1.0
        assert stats["delayed"] == 1
        assert stats["superseded"] == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="delay_s"):
            DelayFault(0.1, delay_s=0.0)
        with pytest.raises(ValueError, match="delay_steps"):
            DelayFault(0.1, delay_steps=0)


class TestNaNFault:
    def test_stream_corruption_preserves_timestamps(self):
        times, values = _stream(500)
        plan = FaultPlan([NaNFault(0.2)], seed=7)
        t, v = plan.apply_stream(times, values)
        np.testing.assert_array_equal(t, times)
        n_nan = int(np.isnan(v).sum())
        assert n_nan == plan.stats["faults.stream.nan.corrupted"] > 0

    def test_grid_corrupts_whole_sample(self):
        samples = [np.ones(8), np.ones(8)]
        fault = NaNFault(1.0)
        out, stats = fault.apply_grid(samples, np.random.default_rng(0))
        assert all(np.isnan(s).all() for s in out)
        assert stats["corrupted"] == 2


class TestFaultPlan:
    def test_same_seed_reproduces_identical_corruption(self):
        times, values = _stream(1000)
        faults = lambda: [DropFault(0.2), DelayFault(0.1), NaNFault(0.05)]
        t1, v1 = FaultPlan(faults(), seed=42).apply_stream(times, values)
        t2, v2 = FaultPlan(faults(), seed=42).apply_stream(times, values)
        np.testing.assert_array_equal(t1, t2)
        np.testing.assert_array_equal(v1, v2)

    def test_different_seeds_diverge(self):
        times, values = _stream(1000)
        t1, _ = FaultPlan([DropFault(0.2)], seed=1).apply_stream(times, values)
        t2, _ = FaultPlan([DropFault(0.2)], seed=2).apply_stream(times, values)
        assert len(t1) != len(t2) or not np.array_equal(t1, t2)

    def test_faults_compose_in_order(self):
        # Drop-everything first means the NaN stage sees an empty stream.
        times, values = _stream(100)
        plan = FaultPlan([DropFault(1.0), NaNFault(1.0)], seed=8)
        t, v = plan.apply_stream(times, values)
        assert len(t) == 0
        assert plan.stats["faults.stream.nan.corrupted"] == 0

    def test_stats_accumulate_across_calls(self):
        times, values = _stream(100)
        plan = FaultPlan([DropFault(1.0)], seed=9)
        plan.apply_stream(times, values, label="tof")
        plan.apply_stream(times, values, label="tof")
        assert plan.stats["faults.tof.drop.dropped"] == 200

    def test_mismatched_stream_shapes_rejected(self):
        with pytest.raises(ValueError, match="pair up"):
            FaultPlan([], seed=0).apply_stream([0.0, 1.0], [5.0])


class TestSessionWiring:
    """FaultPlan plugged into SensingSession degrades the run's inputs."""

    def _run(self, faults=None, recorder=None, n_steps=8):
        class FakeClassifier:
            wants_tof = True

            def __init__(self):
                self.tof = []
                self.csi = []

            def push_tof(self, time_s, reading):
                self.tof.append((time_s, reading))

            def push_csi(self, time_s, sample):
                self.csi.append(sample)
                return None

        classifier = FakeClassifier()
        times = np.arange(n_steps * 5) * 0.1
        session = SensingSession(
            classifier,
            csi_by_step=[np.ones(4) * i for i in range(n_steps)],
            tof_times=times,
            tof_readings=np.full(len(times), 100.0),
            faults=faults,
        )
        grid = TimeGrid(np.arange(n_steps) * 0.5)
        engine = SimulationEngine(grid, recorder=recorder) if recorder else SimulationEngine(grid)
        engine.add(session)
        engine.run()
        return classifier

    def test_no_faults_delivers_everything(self):
        classifier = self._run()
        assert len(classifier.csi) == 8

    def test_dropped_csi_steps_are_skipped_and_counted(self):
        recorder = TelemetryRecorder()
        classifier = self._run(
            faults=FaultPlan([DropFault(0.5)], seed=11), recorder=recorder
        )
        missing = recorder.metrics.counter("sensing.csi_missing", client="client").value
        assert missing > 0
        assert len(classifier.csi) == 8 - missing

    def test_fault_stats_surface_as_counters(self):
        recorder = TelemetryRecorder()
        self._run(faults=FaultPlan([DropFault(0.5)], seed=12), recorder=recorder)
        counters = recorder.metrics.counters()
        assert any(name.startswith("faults.tof.drop") for name in counters)
        assert any(name.startswith("faults.csi.drop") for name in counters)

    def test_tof_drop_thins_the_timed_stream(self):
        classifier = self._run(faults=FaultPlan([DropFault(0.4)], seed=13))
        assert 0 < len(classifier.tof) < 40


class TestEndToEndDegradedRun:
    """ISSUE acceptance: a >=20% ToF drop over a macro-mobility trace must
    not fake (or lose) the classification when the pipeline is time-aware."""

    def _macro_run(self, tof_config, seed=99):
        cfg = ClassifierConfig(similarity_smoothing_window=1, tof=tof_config)
        classifier = MobilityClassifier(cfg)
        rng = np.random.default_rng(seed)
        n_steps = 40  # 20 s at the 0.5 s CSI cadence
        csi = [np.abs(rng.standard_normal(52)) + 0.05 for _ in range(n_steps)]
        tof_times = np.arange(0.0, n_steps * 0.5, 0.02)
        tof_readings = 100.0 + 1.2 * tof_times  # brisk walk away: true MACRO
        session = SensingSession(
            classifier,
            csi_by_step=csi,
            tof_times=tof_times,
            tof_readings=tof_readings,
            faults=FaultPlan([DropFault(0.25)], seed=seed),
        )
        engine = SimulationEngine(TimeGrid(np.arange(n_steps) * 0.5))
        engine.add(session)
        estimates = engine.run()["client"]
        return [e.mode for e in estimates]

    def test_true_macro_survives_25_percent_drop(self):
        modes = self._macro_run(ToFTrendConfig(time_aware=True, min_median_samples=10))
        assert MobilityMode.MACRO in modes

    def test_count_based_also_detects_but_without_gap_accounting(self):
        # The drift here is strong (1.2 cycles/s), so even the stretched
        # count-based window calls MACRO; the stretched-window *failure*
        # (slow drift faked into MACRO) is pinned in
        # tests/test_core_classifier.py::TestStretchedWindowBug.
        modes = self._macro_run(ToFTrendConfig())
        assert MobilityMode.MACRO in modes


class TestSessionCrashFault:
    def test_validation(self):
        with pytest.raises(ValueError, match="phase"):
            SessionCrashFault(phase="teleport")
        with pytest.raises(ValueError, match="at_step"):
            SessionCrashFault(at_step=-1)
        with pytest.raises(ValueError, match="n_crashes"):
            SessionCrashFault(n_crashes=0)

    def test_crash_window(self):
        fault = SessionCrashFault(phase="adapt", at_step=5, n_crashes=3)
        assert not fault.should_crash("adapt", 4)
        assert all(fault.should_crash("adapt", s) for s in (5, 6, 7))
        assert not fault.should_crash("adapt", 8)
        assert not fault.should_crash("sense", 5)

    def test_fire_raises_and_counts(self):
        fault = SessionCrashFault(at_step=0)
        with pytest.raises(InjectedFault, match="injected session crash"):
            fault.fire()
        assert fault.n_fired == 1

    def test_seeded_arm_is_deterministic(self):
        armed = []
        for _ in range(5):
            fault = SessionCrashFault(seed=7)
            fault.arm(200)
            armed.append(fault.at_step)
        assert len(set(armed)) == 1
        assert 0 <= armed[0] < 200

    def test_arm_respects_pinned_step(self):
        fault = SessionCrashFault(at_step=13, seed=7)
        fault.arm(200)
        assert fault.at_step == 13


class TestChannelEvalFault:
    def test_fires_on_scheduled_call_only(self):
        fault = ChannelEvalFault(at_call=2)

        class FakeChannel:
            def evaluate(self):
                return "ok"

        wrapped = fault.wrap(FakeChannel())
        assert wrapped.evaluate() == "ok"
        assert wrapped.evaluate() == "ok"
        with pytest.raises(InjectedFault):
            wrapped.evaluate()
        assert wrapped.evaluate() == "ok"  # one-shot
        assert fault.n_fired == 1

    def test_proxy_is_attribute_transparent(self):
        class FakeChannel:
            def __init__(self):
                self.recorder = "original"

            def evaluate(self):
                return "ok"

        inner = FakeChannel()
        wrapped = ChannelEvalFault(at_call=99).wrap(inner)
        wrapped.recorder = "replaced"
        assert inner.recorder == "replaced"
        assert wrapped.recorder == "replaced"


class TestRecorderFault:
    def test_rate_one_raises_on_targeted_hooks_only(self):
        fault = RecorderFault(hooks=("count",))
        recorder = fault.wrap(TelemetryRecorder())
        with pytest.raises(InjectedFault, match=r"\(count\)"):
            recorder.count("x")
        recorder.gauge("y", 1.0)  # untargeted hook passes through
        assert fault.n_fired == 1

    def test_seeded_partial_rate_is_deterministic(self):
        def fired(seed):
            fault = RecorderFault(rate=0.5, seed=seed)
            recorder = fault.wrap(TelemetryRecorder())
            outcomes = []
            for _ in range(50):
                try:
                    recorder.event("tick", 0.0)
                    outcomes.append(False)
                except InjectedFault:
                    outcomes.append(True)
            return outcomes

        assert fired(11) == fired(11)
        assert any(fired(11)) and not all(fired(11))

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            RecorderFault(rate=1.2)
