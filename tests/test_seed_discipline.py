"""Seed regression tests over the public ``seed=`` / ``rng=`` entry points.

The REP001 rule catches a seed parameter that is *never read*; this file
catches the subtler failure where a seed is read but does not actually
steer the output (or where two calls share hidden global state).  For
every public entry point that accepts a seed:

* the same seed twice must be **bit-identical**, and
* two different seeds must produce different output.

This is the regression net for the historical ``simulate_uplink`` bug
(an accepted-but-ignored ``seed=``, fixed in PR 3): had this suite
existed then, the "different seeds differ" half would have failed.
"""

import numpy as np
import pytest

from repro.channel.config import ChannelConfig
from repro.channel.model import LinkChannel
from repro.experiments.common import sense_and_classify
from repro.mobility.scenarios import macro_scenario, micro_scenario
from repro.mobility.trajectory import StaticTrajectory
from repro.rate.atheros import AtherosRateAdaptation
from repro.testing import synthetic_trace
from repro.util.geometry import Point
from repro.util.rng import ensure_rng, spawn_rngs
from repro.wlan.floorplan import default_office_floorplan
from repro.wlan.uplink import simulate_uplink

AP = Point(0.0, 0.0)
CLIENT = Point(8.0, 5.0)


def _uplink_fingerprint(seed):
    trace = synthetic_trace(snr_db=22.0, duration_s=5.0, doppler_hz=8.0)
    result = simulate_uplink(AtherosRateAdaptation(), trace, seed=seed)
    rr = result.rate_result
    return np.concatenate(
        [
            np.array([result.throughput_mbps, rr.n_frames, rr.delivered_bytes], dtype=float),
            np.asarray(rr.frame_mcs, dtype=float),
            np.asarray(rr.frame_delivered, dtype=float),
        ]
    )


def _sense_and_classify_fingerprint(seed):
    scenario = macro_scenario(CLIENT, seed=seed)
    sensed = sense_and_classify(scenario, ap=AP, duration_s=8.0, seed=seed)
    modes = [hint.mode.value for hint in sensed.hints]
    return np.concatenate(
        [sensed.trace.snr_db, np.array([hash(tuple(modes))], dtype=float)]
    )


def _micro_scenario_fingerprint(seed):
    trajectory = micro_scenario(CLIENT, seed=seed).trajectory.sample(6.0, 0.05)
    return trajectory.positions.ravel()


def _macro_scenario_fingerprint(seed):
    trajectory = macro_scenario(CLIENT, seed=seed).trajectory.sample(6.0, 0.05)
    return trajectory.positions.ravel()


def _link_channel_fingerprint(seed):
    trajectory = StaticTrajectory(CLIENT).sample(2.0, 0.1)
    link = LinkChannel(AP, ChannelConfig(), seed=seed)
    trace = link.evaluate(trajectory.times, trajectory.positions, include_h=True)
    return trace.h.ravel().view(float)


def _measured_csi_fingerprint(seed):
    trajectory = StaticTrajectory(CLIENT).sample(1.0, 0.1)
    link = LinkChannel(AP, ChannelConfig(), seed=0)
    trace = link.evaluate(trajectory.times, trajectory.positions, include_h=True)
    return trace.measured_csi(rng=seed, smooth_subcarriers=1).ravel().view(float)


def _floorplan_fingerprint(seed):
    floorplan = default_office_floorplan()
    points = [floorplan.random_client_position(rng=seed + i) for i in range(8)]
    return np.array([[p.x, p.y] for p in points]).ravel()


def _ensure_rng_fingerprint(seed):
    return ensure_rng(seed).normal(size=32)


def _spawn_rngs_fingerprint(seed):
    return np.concatenate([rng.normal(size=8) for rng in spawn_rngs(seed, 4)])


ENTRY_POINTS = [
    pytest.param(_uplink_fingerprint, id="simulate_uplink"),
    pytest.param(_sense_and_classify_fingerprint, id="sense_and_classify"),
    pytest.param(_micro_scenario_fingerprint, id="micro_scenario"),
    pytest.param(_macro_scenario_fingerprint, id="macro_scenario"),
    pytest.param(_link_channel_fingerprint, id="LinkChannel"),
    pytest.param(_measured_csi_fingerprint, id="ChannelTrace.measured_csi"),
    pytest.param(_floorplan_fingerprint, id="Floorplan.random_client_position"),
    pytest.param(_ensure_rng_fingerprint, id="ensure_rng"),
    pytest.param(_spawn_rngs_fingerprint, id="spawn_rngs"),
]


@pytest.mark.parametrize("fingerprint", ENTRY_POINTS)
class TestSeedDiscipline:
    def test_same_seed_is_bit_identical(self, fingerprint):
        first = fingerprint(123)
        second = fingerprint(123)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self, fingerprint):
        first = fingerprint(123)
        second = fingerprint(456)
        assert first.shape != second.shape or not np.array_equal(first, second)


def test_seed_runs_share_no_global_state():
    """Interleaving two seeded computations does not perturb either —
    i.e. nothing routes through module-level RNG state (np.random.* or
    stdlib random), which is exactly what REP001 bans statically."""
    solo = _link_channel_fingerprint(5)
    _ = _uplink_fingerprint(99)  # interleaved unrelated seeded work
    interleaved = _link_channel_fingerprint(5)
    np.testing.assert_array_equal(solo, interleaved)


def test_seed_none_means_fresh_entropy_where_documented():
    """`seed=None` draws fresh entropy (two calls differ) for ensure_rng —
    the one sanctioned source of nondeterminism, owned by repro.util.rng."""
    first = ensure_rng(None).normal(size=16)
    second = ensure_rng(None).normal(size=16)
    assert not np.array_equal(first, second)
