"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest

from repro.channel.config import ChannelConfig
from repro.channel.model import ChannelTrace, LinkChannel
from repro.core.classifier import MobilityClassifier
from repro.core.similarity import csi_similarity
from repro.mac.aggregation import FrameTransmitter
from repro.mobility.trajectory import StaticTrajectory
from repro.rate.atheros import AtherosRateAdaptation
from repro.rate.simulator import simulate_rate_control
from repro.testing import synthetic_trace
from repro.util.geometry import Point

AP = Point(0.0, 0.0)


class TestChannelEdgeCases:
    def test_single_sample_evaluation(self):
        link = LinkChannel(AP, ChannelConfig(), seed=1)
        trace = link.evaluate(np.array([0.0]), np.array([[10.0, 5.0]]), include_h=True)
        assert len(trace) == 1
        assert trace.h.shape[0] == 1

    def test_client_at_ap_position_is_clamped(self):
        """A client standing on the AP must not divide by zero."""
        link = LinkChannel(AP, ChannelConfig(), seed=2)
        trajectory = StaticTrajectory(Point(0.0, 0.0)).sample(1.0, 0.1)
        trace = link.evaluate(trajectory.times, trajectory.positions, include_h=False)
        assert np.all(np.isfinite(trace.snr_db))
        assert np.all(trace.distances_m >= 0.5)

    def test_very_far_client_still_finite(self):
        link = LinkChannel(AP, ChannelConfig(), seed=3)
        trajectory = StaticTrajectory(Point(500.0, 0.0)).sample(1.0, 0.1)
        trace = link.evaluate(trajectory.times, trajectory.positions, include_h=False)
        assert np.all(np.isfinite(trace.rssi_dbm))
        assert np.mean(trace.snr_db) < 0.0  # deep in the noise

    def test_mismatched_positions_shape(self):
        link = LinkChannel(AP, ChannelConfig(), seed=4)
        with pytest.raises(ValueError):
            link.evaluate(np.array([0.0, 0.1]), np.zeros((3, 2)))

    def test_empty_times(self):
        link = LinkChannel(AP, ChannelConfig(), seed=5)
        with pytest.raises(ValueError):
            link.evaluate(np.array([]), np.zeros((0, 2)))

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            ChannelTrace(
                times=np.zeros(3),
                distances_m=np.zeros(2),  # wrong length
                rssi_dbm=np.zeros(3),
                snr_db=np.zeros(3),
                fading_db=np.zeros(3),
                doppler_hz=np.zeros(3),
                mimo_condition_db=np.zeros(3),
            )

    def test_measured_csi_without_h(self):
        trace = synthetic_trace()
        with pytest.raises(ValueError):
            trace.measured_csi(0)


class TestClassifierEdgeCases:
    def test_all_zero_csi(self):
        """A dead channel estimate must not crash the similarity metric."""
        clf = MobilityClassifier()
        zeros = np.zeros(52)
        clf.push_csi(0.0, zeros)
        estimate = clf.push_csi(0.5, zeros)
        assert estimate is not None  # flat == flat -> similarity 1 -> static

    def test_similarity_with_zero_vector(self):
        assert csi_similarity(np.zeros(52), np.zeros(52)) == 1.0

    def test_single_subcarrier_rejected_gracefully(self):
        # Degenerate but shape-valid input: 1-D length-2 vectors.
        value = csi_similarity(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        assert value == pytest.approx(1.0)

    def test_time_going_backwards_does_not_crash(self):
        clf = MobilityClassifier()
        rng = np.random.default_rng(6)
        clf.push_csi(1.0, np.abs(rng.standard_normal(52)))
        clf.push_csi(0.5, np.abs(rng.standard_normal(52)))  # out of order
        assert clf.estimate is not None


class TestRateEdgeCases:
    def test_trace_shorter_than_one_frame(self):
        trace = synthetic_trace(duration_s=0.2, dt=0.05)
        result = simulate_rate_control(
            AtherosRateAdaptation(),
            trace,
            transmitter=FrameTransmitter(seed=7),
            perturbations=None,
        )
        assert result.n_frames >= 1

    def test_snr_cliff_recovery(self):
        """SNR collapses mid-run and recovers; the RA must follow both ways."""
        trace = synthetic_trace(
            snr_db=lambda t: 30.0 if (t < 5.0 or t > 10.0) else 2.0,
            duration_s=15.0,
        )
        result = simulate_rate_control(
            AtherosRateAdaptation(),
            trace,
            transmitter=FrameTransmitter(seed=8),
            record_timeline=True,
            perturbations=None,
        )
        times = np.array(result.frame_times)
        mcs = np.array(result.frame_mcs)
        during = mcs[(times > 7.0) & (times < 10.0)]
        after = mcs[times > 13.0]
        assert np.mean(during) < np.mean(after)  # dropped during the cliff
        assert np.mean(after) > 5.0  # recovered

    def test_zero_payload_rejected(self):
        with pytest.raises(ValueError):
            FrameTransmitter(mpdu_payload_bytes=0)


class TestMobilityEdgeCases:
    def test_tiny_waypoint_area_terminates(self):
        """Degenerate areas must not spin the waypoint picker forever."""
        from repro.mobility.trajectory import WaypointWalkTrajectory

        trajectory = WaypointWalkTrajectory(
            Point(0.5, 0.5), area=(0.0, 0.0, 1.0, 1.0), seed=9
        )
        trace = trajectory.sample(5.0, 0.05)
        assert len(trace) == 100

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            StaticTrajectory(Point(0, 0)).sample(0.0, 0.1)
