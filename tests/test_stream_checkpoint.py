"""Checkpoint/resume of the streaming service: kill it, restore it, and
the estimates must be bit-identical to the run that never died.

Covers the happy path, the versioned-artifact guards, and the two nasty
resume shapes the supervision machinery creates: a checkpoint holding a
*quarantined* member (must stay quarantined, record intact) and one
holding a *suspended* member with a queue backlog (must resume and drain
the backlog exactly like the uninterrupted service).
"""

import pickle

import numpy as np
import pytest

from repro.core.batched import BatchedMobilityClassifier
from repro.faults import SessionCrashFault
from repro.sim import FailureRecord
from repro.sim.supervisor import SupervisorConfig
from repro.stream import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CorruptCheckpoint,
    FleetSpec,
    SimulatedSource,
    StreamConfig,
    StreamRouter,
    checkpoint_state,
    load_checkpoint,
    restore_router,
    save_checkpoint,
    tof_observation,
)
from repro.telemetry.recorder import TelemetryRecorder

SPEC = FleetSpec(n_clients=8, duration_s=20.0)
CONFIG = StreamConfig(
    dt_s=SPEC.csi_period_s, horizon_steps=SPEC.n_steps, queue_capacity=256
)
END_S = CONFIG.start_s + (SPEC.n_steps - 1) * CONFIG.dt_s


def fresh_source():
    return SimulatedSource(SPEC, seed=17)


def make_router(recorder=None, supervisor=None, member_faults=None, on_estimate=None):
    classifier = BatchedMobilityClassifier(fresh_source().labels)
    return StreamRouter(
        classifier,
        config=CONFIG,
        recorder=recorder if recorder is not None else TelemetryRecorder(),
        supervisor=supervisor,
        member_faults=member_faults,
        on_estimate=on_estimate,
    )


def run_stream(
    router, observations, cut_s=None, tmp_path=None, recorder=None, on_restore=None
):
    """Drive the trace; if ``cut_s`` is set, kill and restore there."""
    restarted = False
    for observation in observations:
        if cut_s is not None and not restarted and observation.time_s >= cut_s:
            path = tmp_path / "service.ckpt"
            save_checkpoint(router, path)
            del router
            router = load_checkpoint(
                path, recorder=recorder if recorder is not None else TelemetryRecorder()
            )
            if on_restore is not None:
                on_restore(router)
            restarted = True
        router.offer(observation)
        router.advance(observation.time_s - CONFIG.dt_s)
    router.advance(END_S)
    return router


def results_equal(a, b):
    """Deep equality across estimate streams *and* failure records."""
    if set(a) != set(b):
        return False
    for label in a:
        x, y = a[label], b[label]
        if isinstance(x, FailureRecord) or isinstance(y, FailureRecord):
            if not (isinstance(x, FailureRecord) and isinstance(y, FailureRecord)):
                return False
            if x.to_dict() != y.to_dict():
                return False
            continue
        if len(x) != len(y):
            return False
        for ex, ey in zip(x, y):
            if ex.to_dict() != ey.to_dict():
                return False
    return True


class TestHappyPathResume:
    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        baseline = run_stream(make_router(), fresh_source()).results()
        resumed = run_stream(
            make_router(), fresh_source(), cut_s=9.3, tmp_path=tmp_path
        ).results()
        assert results_equal(baseline, resumed)

    def test_resume_at_several_cut_points(self, tmp_path):
        baseline = run_stream(make_router(), fresh_source()).results()
        for cut_s in (0.2, 5.0, 17.8):
            resumed = run_stream(
                make_router(), fresh_source(), cut_s=cut_s, tmp_path=tmp_path
            ).results()
            assert results_equal(baseline, resumed), f"diverged for cut at {cut_s}"

    def test_resume_preserves_collected_estimates(self, tmp_path):
        router = make_router()
        observations = list(fresh_source())
        mid = len(observations) // 2
        for observation in observations[:mid]:
            router.offer(observation)
            router.advance(observation.time_s - CONFIG.dt_s)
        pre_counts = {k: len(v) for k, v in router.results().items()}
        assert sum(pre_counts.values()) > 0
        path = tmp_path / "svc.ckpt"
        save_checkpoint(router, path)
        restored = load_checkpoint(path)
        assert {k: len(v) for k, v in restored.results().items()} == pre_counts

    def test_resume_continues_at_the_same_step(self, tmp_path):
        router = make_router()
        router.advance(5.2)
        path = tmp_path / "svc.ckpt"
        save_checkpoint(router, path)
        restored = load_checkpoint(path)
        assert restored.stepper.next_index == router.stepper.next_index
        assert restored.clock_s == router.clock_s

    def test_queued_backlog_survives_the_restart(self, tmp_path):
        router = make_router()
        for t in (0.6, 0.7, 0.8):
            assert router.offer(tof_observation("client-0", t, 200.0 + t))
        assert router.backlog == 3
        path = tmp_path / "svc.ckpt"
        save_checkpoint(router, path)
        restored = load_checkpoint(path)
        assert restored.backlog == 3


class TestArtifactGuards:
    def test_rejects_foreign_format(self):
        with pytest.raises(ValueError, match="not a"):
            restore_router({"format": "some.other.artifact", "version": 1})

    def test_rejects_newer_version(self):
        state = checkpoint_state(make_router())
        state["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            restore_router(state)

    def test_rejects_cohort_mismatch(self):
        state = checkpoint_state(make_router())
        other = StreamRouter(
            BatchedMobilityClassifier(["x", "y"]), config=CONFIG
        )
        with pytest.raises(ValueError, match="labels"):
            other.load_state_dict(state["router"])

    def test_artifact_is_a_digested_envelope_over_a_plain_dict(self, tmp_path):
        """Since v2 the on-disk artifact is a sha256-stamped envelope whose
        payload bytes unpickle to the plain versioned config/state dict."""
        import hashlib

        router = make_router()
        path = tmp_path / "svc.ckpt"
        save_checkpoint(router, path)
        with open(path, "rb") as handle:
            raw = pickle.load(handle)
        assert raw["format"] == CHECKPOINT_FORMAT
        assert raw["version"] == CHECKPOINT_VERSION
        assert isinstance(raw["payload"], bytes)
        assert raw["sha256"] == hashlib.sha256(raw["payload"]).hexdigest()
        state = pickle.loads(raw["payload"])
        assert state["format"] == CHECKPOINT_FORMAT
        assert state["version"] == CHECKPOINT_VERSION
        assert isinstance(state["stream_config"], dict)
        assert isinstance(state["classifier_config"], dict)
        assert isinstance(state["supervisor_config"], dict)
        from repro import __version__

        assert state["repro_version"] == __version__

    def test_restored_config_matches(self, tmp_path):
        router = make_router()
        path = tmp_path / "svc.ckpt"
        save_checkpoint(router, path)
        restored = load_checkpoint(path)
        assert restored.config == router.config
        assert restored.supervisor_config == router.supervisor_config
        assert restored.classifier.config == router.classifier.config


class TestCorruptArtifacts:
    """Integrity guards: a rotted artifact must be refused loudly, with a
    message that tells a torn file from a flipped bit from a wrong one."""

    def saved(self, tmp_path):
        path = tmp_path / "svc.ckpt"
        save_checkpoint(make_router(), path)
        return path

    def test_truncated_artifact_is_refused(self, tmp_path):
        path = self.saved(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])
        with pytest.raises(CorruptCheckpoint):
            load_checkpoint(path)

    def test_flipped_byte_fails_the_digest(self, tmp_path):
        path = self.saved(tmp_path)
        data = bytearray(path.read_bytes())
        # Flip deep inside the payload so the envelope still unpickles
        # and the sha256 integrity check is what catches it.
        data[(len(data) * 2) // 3] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptCheckpoint, match="integrity|unpickle|readable"):
            load_checkpoint(path)

    def test_wrong_format_is_a_distinct_refusal(self, tmp_path):
        path = tmp_path / "svc.ckpt"
        path.write_bytes(
            pickle.dumps({"format": "not.a.checkpoint", "version": 0, "payload": b""})
        )
        with pytest.raises(ValueError, match="not a repro.stream.checkpoint"):
            load_checkpoint(path)

    def test_future_version_is_a_distinct_refusal(self, tmp_path):
        path = self.saved(tmp_path)
        with open(path, "rb") as handle:
            raw = pickle.load(handle)
        raw["version"] = CHECKPOINT_VERSION + 1
        path.write_bytes(pickle.dumps(raw))
        with pytest.raises(ValueError, match="newer"):
            load_checkpoint(path)

    def test_non_pickle_bytes_are_refused(self, tmp_path):
        path = tmp_path / "svc.ckpt"
        path.write_bytes(b"this is not a pickle at all")
        with pytest.raises(CorruptCheckpoint):
            load_checkpoint(path)

    def test_non_dict_pickle_is_refused(self, tmp_path):
        path = tmp_path / "svc.ckpt"
        path.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(CorruptCheckpoint, match="artifact dict"):
            load_checkpoint(path)

    def test_missing_payload_bytes_are_refused(self, tmp_path):
        path = tmp_path / "svc.ckpt"
        path.write_bytes(
            pickle.dumps(
                {"format": CHECKPOINT_FORMAT, "version": CHECKPOINT_VERSION,
                 "sha256": "0" * 64, "payload": "not-bytes"}
            )
        )
        with pytest.raises(CorruptCheckpoint, match="payload bytes"):
            load_checkpoint(path)

    def test_distinct_messages_per_corruption_mode(self, tmp_path):
        """Operators must be able to tell failure modes apart."""
        messages = set()
        for builder in (
            lambda p: p.write_bytes(b"\x80"),  # truncated pickle stream
            lambda p: p.write_bytes(pickle.dumps(7)),  # not a dict
            lambda p: p.write_bytes(
                pickle.dumps(
                    {"format": CHECKPOINT_FORMAT, "version": CHECKPOINT_VERSION,
                     "sha256": "0" * 64, "payload": b"rotten"}
                )
            ),  # digest mismatch
        ):
            path = tmp_path / "svc.ckpt"
            builder(path)
            with pytest.raises(CorruptCheckpoint) as excinfo:
                load_checkpoint(path)
            messages.add(str(excinfo.value).split("artifact")[-1])
        assert len(messages) == 3

    def test_v1_flat_artifact_still_loads(self, tmp_path):
        """Digest-less version-1 artifacts (flat payload dict) remain
        loadable for one deprecation cycle."""
        router = make_router()
        router.advance(5.2)
        state = checkpoint_state(router)
        state["version"] = 1
        path = tmp_path / "v1.ckpt"
        path.write_bytes(pickle.dumps(state))
        restored = load_checkpoint(path)
        assert restored.stepper.next_index == router.stepper.next_index
        assert restored.clock_s == router.clock_s

    def test_atomic_write_leaves_no_temp_file(self, tmp_path):
        path = self.saved(tmp_path)
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []


class TestSupervisedResume:
    """Resume with quarantine/suspension state in the artifact."""

    SUPERVISOR = SupervisorConfig(policy="isolate")
    RETRY = SupervisorConfig(policy="retry", max_retries=2, backoff_base_s=0.5)

    def faulted_router(self, supervisor, n_crashes=1, at_step=8):
        return make_router(
            supervisor=supervisor,
            member_faults={
                "client-0": SessionCrashFault(
                    phase="classify", at_step=at_step, n_crashes=n_crashes
                )
            },
        )

    def test_quarantined_member_stays_quarantined(self, tmp_path):
        baseline = run_stream(
            self.faulted_router(self.SUPERVISOR), fresh_source()
        ).results()
        assert isinstance(baseline["client-0"], FailureRecord)

        # Cut AFTER the crash at step 8 (t = 4.0 s) so the quarantine
        # rides inside the artifact.
        resumed_router = run_stream(
            self.faulted_router(self.SUPERVISOR),
            fresh_source(),
            cut_s=6.1,
            tmp_path=tmp_path,
        )
        resumed = resumed_router.results()
        assert isinstance(resumed["client-0"], FailureRecord)
        assert results_equal(baseline, resumed)

    def test_suspended_member_resumes_mid_backlog(self, tmp_path):
        """The artifact captures a suspended member whose queue kept
        buffering; the restored service un-suspends it on schedule and
        drains the backlog bit-identically."""
        baseline = run_stream(
            self.faulted_router(self.RETRY), fresh_source()
        ).results()
        assert not isinstance(baseline["client-0"], FailureRecord)

        # The crash step (8, t=4.0) runs lazily once observations reach
        # 4.5 s; the resume step (4.5 s) runs once they reach 5.0 s.
        # Cutting at 4.7 s therefore checkpoints a *suspended* member —
        # and its queue must hold the ToF backlog buffered meanwhile.
        restored_state = {}

        def capture(router):
            restored_state["suspended"] = dict(
                router.stepper.supervisor.state_dict()["suspended_until"]
            )
            restored_state["backlog"] = len(
                router.queues[router.labels.index("client-0")]
            )

        resumed = run_stream(
            self.faulted_router(self.RETRY),
            fresh_source(),
            cut_s=4.7,
            tmp_path=tmp_path,
            on_restore=capture,
        ).results()
        assert "client-0" in restored_state["suspended"]
        assert restored_state["backlog"] > 0
        assert results_equal(baseline, resumed)

    def test_escalated_quarantine_round_trips(self, tmp_path):
        supervisor = SupervisorConfig(policy="retry", max_retries=1, backoff_base_s=0.5)
        baseline = run_stream(
            self.faulted_router(supervisor, n_crashes=3), fresh_source()
        ).results()
        assert isinstance(baseline["client-0"], FailureRecord)
        assert baseline["client-0"].retries >= 1
        resumed = run_stream(
            self.faulted_router(supervisor, n_crashes=3),
            fresh_source(),
            cut_s=7.1,
            tmp_path=tmp_path,
        ).results()
        assert results_equal(baseline, resumed)


class TestTelemetryAcrossResume:
    def test_counters_do_not_double_count(self, tmp_path):
        """A restored service binds a fresh recorder and counts only what
        happens in the new process — resume never replays history."""
        observations = list(fresh_source())
        cut_s = 9.3
        n_before = sum(1 for o in observations if o.time_s < cut_s)

        first = TelemetryRecorder()
        second = TelemetryRecorder()
        router = make_router(recorder=first)
        run_stream(router, observations, cut_s=cut_s, tmp_path=tmp_path, recorder=second)

        def accepted(recorder):
            from repro.telemetry.metrics import CounterMetric

            return sum(
                m.value
                for m in recorder.metrics.metrics()
                if isinstance(m, CounterMetric) and m.name == "stream.accepted"
            )

        assert accepted(first) == n_before
        assert accepted(second) == len(observations) - n_before

    def test_resume_emits_stream_resume_event(self, tmp_path):
        router = make_router()
        router.advance(3.1)
        path = tmp_path / "svc.ckpt"
        save_checkpoint(router, path)
        recorder = TelemetryRecorder()
        load_checkpoint(path, recorder=recorder)
        kinds = [event.kind for event in recorder.events]
        assert "stream_resume" in kinds

    def test_checkpoint_emits_event(self, tmp_path):
        recorder = TelemetryRecorder()
        router = make_router(recorder=recorder)
        save_checkpoint(router, tmp_path / "svc.ckpt")
        kinds = [event.kind for event in recorder.events]
        assert "stream_checkpoint" in kinds


class TestEvictionStateRoundTrip:
    def test_evicted_and_shed_flags_survive(self, tmp_path):
        classifier = BatchedMobilityClassifier(["a", "b", "c"])
        config = StreamConfig(
            dt_s=0.5,
            horizon_steps=100,
            queue_capacity=2,
            backpressure="shed_session",
            idle_timeout_s=1.0,
        )
        router = StreamRouter(classifier, config=config)
        # Shed "a" by overflow; let "b"/"c" go idle and get evicted.
        router.offer(tof_observation("a", 0.1, 1.0))
        router.offer(tof_observation("a", 0.15, 1.0))
        router.offer(tof_observation("a", 0.2, 1.0))
        router.advance(3.0)
        assert router.shed[0] and router.evicted[1] and router.evicted[2]

        path = tmp_path / "svc.ckpt"
        save_checkpoint(router, path)
        restored = load_checkpoint(path)
        assert list(restored.shed) == list(router.shed)
        assert list(restored.evicted) == list(router.evicted)
        assert restored.n_active_sessions == router.n_active_sessions
        # Shed stays shed; evicted revives on a fresh offer.
        assert not restored.offer(tof_observation("a", 3.2, 1.0))
        assert restored.offer(tof_observation("b", 3.2, 1.0))
        assert not restored.evicted[1]
