"""Chaos test: killing an AP mid-storm quarantines it, reassociates its
clients, and leaves every surviving client's run bit-identical.

The determinism argument this pins: every policy decision is an argmax
over per-client rows, so masking the dead AP's column can only change
the outcome for clients that would have *selected* that column.  A
client whose fault-free association timeline never touches the dead AP
("survivor") therefore makes exactly the same decisions — epoch by
epoch, bit for bit — whether the AP died or not.
"""

import numpy as np

from repro.controller import MobilityHintPolicy
from repro.controller.session import ApFailureEvent
from repro.experiments import ext_controller
from repro.telemetry import TelemetryRecorder, write_failure_report
from repro.wlan.floorplan import grid_floorplan

DEAD_AP = 3
FAIL_AT_S = 8.0


def _storm():
    return ext_controller.build_storm(
        40, floorplan=grid_floorplan(), duration_s=24.0, seed=11
    )


class TestApFailureChaos:
    @classmethod
    def setup_class(cls):
        inputs = _storm()
        cls.baseline = ext_controller.run_storm(inputs, MobilityHintPolicy())
        cls.recorder = TelemetryRecorder()
        cls.faulty = ext_controller.run_storm(
            inputs,
            MobilityHintPolicy(),
            ap_failures=[
                ApFailureEvent(ap=DEAD_AP, at_s=FAIL_AT_S, reason="chaos kill")
            ],
            recorder=cls.recorder,
        )
        cls.timeline = cls.baseline.association_timeline
        cls.survivors = ~np.any(cls.timeline == DEAD_AP, axis=0)

    def test_scenario_exercises_the_dead_ap(self):
        # The kill must actually strand someone, and most of the fleet
        # must be unaffected, or the test proves nothing.
        n_survivors = int(np.count_nonzero(self.survivors))
        assert 0 < n_survivors < self.timeline.shape[1]
        assert n_survivors >= self.timeline.shape[1] // 2

    def test_dead_ap_is_quarantined(self):
        record = self.faulty.failures[f"ap-{DEAD_AP}"]
        assert record.exception_type == "ApFailure"
        assert record.message == "chaos kill"
        assert self.recorder.metrics.counter("controller.ap_down").value == 1.0
        n_aps = grid_floorplan().n_aps
        assert self.recorder.metrics.gauge("controller.aps_alive").value == n_aps - 1

    def test_stranded_clients_reassociate(self):
        epochs = np.asarray(self.faulty.epoch_times)
        after = self.faulty.association_timeline[epochs >= FAIL_AT_S]
        assert not np.any(after == DEAD_AP)
        assert self.faulty.totals["reassociations"] > 0
        assert (
            self.recorder.metrics.counter("controller.reassociations").value
            == self.faulty.totals["reassociations"]
        )

    def test_survivors_are_bit_identical(self):
        baseline = self.timeline[:, self.survivors]
        faulty = self.faulty.association_timeline[:, self.survivors]
        np.testing.assert_array_equal(baseline, faulty)

    def test_failure_report_round_trips(self, tmp_path):
        path = tmp_path / "controller_failures.json"
        write_failure_report(self.faulty.failures, path)
        text = path.read_text(encoding="utf-8")
        assert "ApFailure" in text and "chaos kill" in text
