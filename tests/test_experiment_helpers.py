"""Coverage for experiment helper functions and result objects."""

import numpy as np
import pytest

from repro.experiments.common import bounded_walk_scenario
from repro.experiments.fig07_roaming import Fig7Result
from repro.experiments.fig13_overall import Fig13Result
from repro.mobility.modes import MobilityMode
from repro.util.geometry import Point
from repro.util.stats import EmpiricalCDF


class TestBoundedWalk:
    def test_respects_bounds(self):
        ap = Point(0.0, 0.0)
        scenario = bounded_walk_scenario(
            Point(20.0, 0.0), ap, min_distance_m=10.0, max_distance_m=30.0, seed=1
        )
        trace = scenario.sample(120.0, 0.05)
        distances = trace.distances_to(ap)
        assert np.min(distances) > 8.0
        assert np.max(distances) < 33.0

    def test_is_macro(self):
        scenario = bounded_walk_scenario(Point(20.0, 0.0), Point(0.0, 0.0), seed=2)
        assert scenario.mode == MobilityMode.MACRO

    def test_quiet_environment(self):
        scenario = bounded_walk_scenario(Point(20.0, 0.0), Point(0.0, 0.0), seed=3)
        assert scenario.environment.is_quiet


class TestResultObjects:
    def test_fig7_result_accessors(self):
        result = Fig7Result(
            gain_cdfs={"static": EmpiricalCDF([0.0, 0.0]), "macro-away": EmpiricalCDF([10.0, 20.0])},
            scheme_cdfs={"default": EmpiricalCDF([10.0]), "controller": EmpiricalCDF([13.0])},
        )
        assert result.median_gain("macro-away") == 15.0
        assert result.median_throughput("controller") == 13.0
        report = result.format_report()
        assert "Fig. 7(a)" in report and "Fig. 7(b)" in report

    def test_fig13_result_metrics(self):
        result = Fig13Result(
            cdfs={
                "default": EmpiricalCDF([10.0, 12.0]),
                "mobility-aware": EmpiricalCDF([15.0, 20.0]),
            },
            per_test=[
                {"default": 10.0, "aware": 15.0},
                {"default": 12.0, "aware": 20.0},
                {"default": 11.0, "aware": 10.0},
            ],
        )
        assert result.win_fraction() == pytest.approx(2 / 3)
        assert result.median_gain_percent() == pytest.approx(50.0)
        assert "wins 2/3" in result.format_report()
        assert "CDF" in result.format_plot()
