#!/usr/bin/env python
"""Quickstart: classify a client's mobility from PHY-layer information.

Builds one AP-client link, walks the client towards and away from the AP,
feeds the AP's CSI samples (every 500 ms) and ToF readings (every 20 ms)
into the paper's classifier, and prints the decisions next to ground truth.

Run:  python examples/quickstart.py
"""

from repro import ChannelConfig, LinkChannel, MobilityClassifier, Point
from repro.mobility.scenarios import macro_scenario
from repro.phy.tof import ToFSampler

AP = Point(0.0, 0.0)
START = Point(20.0, 8.0)
DURATION_S = 40.0
TRAJECTORY_DT_S = 0.02  # 20 ms — the ToF sampling cadence


def main() -> None:
    # 1. A walking client: approach the AP, then retreat, repeatedly.
    scenario = macro_scenario(START, anchor=AP, approach_retreat=True, seed=1)
    trajectory = scenario.sample(DURATION_S, TRAJECTORY_DT_S)
    truths = scenario.ground_truth(trajectory, AP)

    # 2. The wireless channel the AP observes.
    link = LinkChannel(AP, ChannelConfig(), environment=scenario.environment, seed=2)
    csi_stride = 25  # 500 ms CSI sampling on the 20 ms grid
    trace = link.evaluate(
        trajectory.times[::csi_stride], trajectory.positions[::csi_stride], include_h=True
    )
    measured_csi = trace.measured_csi(3)

    # 3. Noisy, quantised ToF readings from the data-ACK exchange.
    tof_readings = ToFSampler(seed=4).sample(trajectory.distances_to(AP))

    # 4. Stream both into the classifier, exactly as the AP would.
    classifier = MobilityClassifier()
    tof_cursor = 0
    print(f"{'time':>6}  {'estimate':<16} {'similarity':>10}   ground truth")
    for i, now in enumerate(trace.times):
        while tof_cursor < len(trajectory.times) and trajectory.times[tof_cursor] <= now:
            if classifier.wants_tof:
                classifier.push_tof(
                    float(trajectory.times[tof_cursor]), float(tof_readings[tof_cursor])
                )
            tof_cursor += 1
        estimate = classifier.push_csi(float(now), measured_csi[i])
        if estimate is None or i % 4:
            continue  # print every 2 seconds
        truth = truths[min(int(now / TRAJECTORY_DT_S), len(truths) - 1)]
        label = estimate.mode.value
        if estimate.heading.value != "none":
            label += f"/{estimate.heading.value}"
        truth_label = truth.mode.value
        if truth.heading.value != "none":
            truth_label += f"/{truth.heading.value}"
        print(f"{now:>5.1f}s  {label:<16} {estimate.csi_similarity:>10.3f}   {truth_label}")


if __name__ == "__main__":
    main()
