#!/usr/bin/env python
"""Self-healing runtime tour: kill it, corrupt it, starve it — same answer.

Drives one :class:`repro.resilience.ResilientService` fleet through every
failure the runtime knows how to absorb, then proves the estimate stream
still matches an uninterrupted golden run bit for bit:

* the grid horizon is deliberately tiny, so the service rolls over
  several times (each rollover is checkpoint/restore into the next
  segment — invisible in the output);
* half the fleet arrives over a flaky source that dies twice mid-run —
  supervised retry with deterministic backoff brings it back, and the
  affected clients are served counted STATIC safe-default hints while
  it is down;
* a :class:`repro.faults.ServiceKillFault` hard-crashes the service
  two-thirds of the way in, and a
  :class:`repro.faults.CheckpointCorruptionFault` then rots the newest
  artifact on disk — recovery scans past it, restores the newest *valid*
  checkpoint, and replays the short gap.

Exports:

* ``recovery.json`` — clocks, counters, and the bit-identity verdict;
* stdout           — a narrated timeline of the healing.

Output paths can be overridden: ``python examples/resilience_demo.py out/``.
CI runs this to attach the recovery report to the build artifacts.

Run:  python examples/resilience_demo.py [output-dir]
"""

import json
import sys
import tempfile
from pathlib import Path

from repro.core.batched import BatchedMobilityClassifier
from repro.faults import CheckpointCorruptionFault, ServiceKilled, ServiceKillFault, SourceFault
from repro.resilience import (
    ResilienceConfig,
    ResilientService,
    SourceSpec,
    list_artifacts,
)
from repro.stream import FleetSpec, SimulatedSource, StreamConfig
from repro.telemetry import TelemetryRecorder
from repro.telemetry.metrics import CounterMetric

N_CLIENTS = 16
DURATION_S = 20.0
SPEC = FleetSpec(n_clients=N_CLIENTS, duration_s=DURATION_S)
HORIZON_STEPS = 13  # tiny on purpose: forces several rollovers
CHECKPOINT_EVERY_S = 2.0
KILL_STEP = 2 * SPEC.n_steps // 3

SOURCE_CHAOS = SourceFault(at_index=1200, n_failures=2)
KILL = ServiceKillFault(at_step=KILL_STEP)
ROT = CheckpointCorruptionFault(mode="flip_byte")


def split_sources(chaos=None):
    labels = SimulatedSource(SPEC, seed=17).labels
    stable, flaky = labels[: N_CLIENTS // 2], labels[N_CLIENTS // 2 :]

    def subset(wanted):
        keep = frozenset(wanted)

        def factory():
            feed = (o for o in SimulatedSource(SPEC, seed=17) if o.client in keep)
            return chaos.wrap(feed) if chaos and keep == frozenset(flaky) else feed

        return factory

    return [
        SourceSpec("stable", subset(stable), clients=tuple(stable)),
        SourceSpec("flaky", subset(flaky), clients=tuple(flaky)),
    ]


def build_service(workdir, recorder, sink, kill=None):
    return ResilientService(
        BatchedMobilityClassifier(SimulatedSource(SPEC, seed=17).labels),
        StreamConfig(dt_s=SPEC.csi_period_s, horizon_steps=HORIZON_STEPS),
        resilience=ResilienceConfig(
            checkpoint_dir=str(workdir), checkpoint_every_s=CHECKPOINT_EVERY_S
        ),
        recorder=recorder,
        on_estimate=lambda label, t, e: sink.append((label, t, e)),
        kill=kill,
    )


def counter(recorder, name):
    return sum(
        m.value
        for m in recorder.metrics.metrics()
        if isinstance(m, CounterMetric) and m.name == name
    )


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)

    with tempfile.TemporaryDirectory() as tmp:
        # Golden: one long grid, clean sources, no faults.
        golden = []
        golden_service = ResilientService(
            BatchedMobilityClassifier(SimulatedSource(SPEC, seed=17).labels),
            StreamConfig(dt_s=SPEC.csi_period_s, horizon_steps=4 * SPEC.n_steps),
            resilience=ResilienceConfig(checkpoint_dir=str(Path(tmp) / "golden2")),
            on_estimate=lambda label, t, e: golden.append((label, t, e)),
        )
        golden_service.run(split_sources(), until_s=DURATION_S)
        print(f"golden run:      {sum(1 for _ in golden)} estimates, "
              f"{golden_service.rollovers} rollovers (long grid)")

        # Chaos: tiny horizon + flaky source + kill + artifact rot.
        recorder = TelemetryRecorder()
        workdir = Path(tmp) / "chaos"
        pre = []
        service = build_service(workdir, recorder, pre, kill=KILL)
        try:
            service.run(split_sources(chaos=SOURCE_CHAOS), until_s=DURATION_S)
            raise SystemExit("kill fault never fired")
        except ServiceKilled:
            pass
        print(f"killed:          hard crash at step {KILL_STEP} "
              f"(clock {service.clock_s:.1f} s, "
              f"{service.rollovers} rollovers survived so far)")

        newest = list_artifacts(str(workdir))[-1]
        ROT.corrupt(newest)
        print(f"corrupted:       flipped a byte in {Path(newest).name}")

        post = []
        recovered = ResilientService.recover(
            service.resilience,
            recorder=recorder,
            on_estimate=lambda label, t, e: post.append((label, t, e)),
        )
        resume_s = recovered.clock_s
        replayed = KILL_STEP - recovered.total_steps
        print(f"recovered:       resumed at clock {resume_s:.1f} s "
              f"(replaying {replayed} steps, newest rotten artifact skipped)")
        recovered.run(split_sources(chaos=SOURCE_CHAOS), until_s=DURATION_S)

        # The flaky half legitimately diverges (backoff drops, degraded
        # hints); the bit-identity contract is for the stable survivors.
        labels = SimulatedSource(SPEC, seed=17).labels
        stable = frozenset(labels[: N_CLIENTS // 2])
        merged = [x for x in pre if x[1] < resume_s] + post
        survivors = [x for x in merged if x[0] in stable]
        golden_survivors = [x for x in golden if x[0] in stable]
        identical = len(survivors) == len(golden_survivors) and all(
            a[0] == b[0] and a[1] == b[1] and a[2].to_dict() == b[2].to_dict()
            for a, b in zip(survivors, golden_survivors)
        )

        print()
        print(recorder.summary(title="resilience demo run"))
        print()
        names = (
            "resilience.rollovers",
            "resilience.checkpoints",
            "resilience.corrupt_artifacts",
            "resilience.recoveries",
            "resilience.source_failures",
            "resilience.source_retries",
            "resilience.degraded_hints",
        )
        counters = {name: counter(recorder, name) for name in names}
        for name, value in counters.items():
            print(f"{name:<35} {value:.0f}")
        print(f"{'survivors bit-identical to golden':<35} {identical}")

        report = {
            "n_clients": N_CLIENTS,
            "duration_s": DURATION_S,
            "kill_step": KILL_STEP,
            "resume_clock_s": resume_s,
            "replayed_steps": replayed,
            "n_estimates": len(merged),
            "survivors_bit_identical": identical,
            "counters": counters,
        }
        report_path = out_dir / "recovery.json"
        report_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nrecovery report: {report_path}")

        if not identical:
            raise SystemExit("recovered survivor estimate stream diverged from golden")
        if counters["resilience.recoveries"] != 1 or counters["resilience.corrupt_artifacts"] < 1:
            raise SystemExit("resilience demo expected one recovery past one rotten artifact")


if __name__ == "__main__":
    main()
