#!/usr/bin/env python
"""MU-MIMO with per-client adaptive CSI feedback.

Three concurrent clients (environmental / micro / macro) are served by a
3-antenna AP with zero-forcing precoding.  Compares a common fixed
feedback period against the per-client Table-2 adaptive policy.

Run:  python examples/mu_mimo_demo.py
"""

from repro import Point
from repro.beamforming.feedback import FixedPeriodFeedback, MobilityAwareFeedback
from repro.beamforming.mu_mimo import MuMimoEmulator
from repro.experiments.fig12_mu_mimo import CLIENT_ROLES, _sense_three_clients
from repro.util.rng import ensure_rng

DURATION_S = 15.0


def main() -> None:
    rng = ensure_rng(21)
    ap = Point(0.0, 0.0)
    print("Sensing three clients (environmental / micro / macro)...")
    sensed = _sense_three_clients(ap, rng, DURATION_S)
    traces = [sensed[role].trace for role in CLIENT_ROLES]
    hints = [sensed[role].hints for role in CLIENT_ROLES]

    print(f"\n{'feedback policy':<22}" + "".join(f"{r:>16}" for r in CLIENT_ROLES) + f"{'network':>10}")
    for label, schedulers, use_hints in (
        ("fixed 20 ms", [FixedPeriodFeedback(20.0) for _ in CLIENT_ROLES], None),
        ("fixed 200 ms", [FixedPeriodFeedback(200.0) for _ in CLIENT_ROLES], None),
        (
            "adaptive (Table 2)",
            [MobilityAwareFeedback(mu_mimo=True) for _ in CLIENT_ROLES],
            hints,
        ),
    ):
        emulator = MuMimoEmulator(seed=3)
        result = emulator.run(traces, schedulers, hints=use_hints)
        row = "".join(f"{t:>16.1f}" for t in result.per_client_throughput_mbps)
        print(f"{label:<22}{row}{result.network_throughput_mbps:>10.1f}")

    print(
        "\nAdaptive feedback keeps the macro client's CSI fresh (20 ms) while"
        "\nthe quieter clients report rarely, cutting sounding overhead."
    )


if __name__ == "__main__":
    main()
