#!/usr/bin/env python
"""Streaming classification of a mixed-mobility session.

Reproduces the Section 6.3 data-collection pattern: the client is static
for a while, then makes confined gestures (micro), then walks (macro).
The AP's classifier follows the transitions with its inherent delays
(CSI smoothing ~1.5 s, ToF trend window ~6 s).

Run:  python examples/classifier_live.py
"""

from repro import ChannelConfig, LinkChannel, MobilityClassifier, Point
from repro.mobility.trajectory import (
    ApproachRetreatTrajectory,
    MicroJitterTrajectory,
    StaticTrajectory,
    concatenate_traces,
)
from repro.phy.tof import ToFSampler

AP = Point(0.0, 0.0)
CLIENT = Point(15.0, 5.0)
DT = 0.02
PHASE_S = 25.0


def main() -> None:
    phases = [
        ("static", StaticTrajectory(CLIENT).sample(PHASE_S, DT)),
        ("micro", MicroJitterTrajectory(CLIENT, seed=1).sample(PHASE_S, DT)),
        (
            "macro",
            ApproachRetreatTrajectory(AP, CLIENT, leg_duration_s=12.0, seed=2).sample(
                PHASE_S, DT
            ),
        ),
    ]
    trajectory = concatenate_traces([trace for _, trace in phases])

    link = LinkChannel(AP, ChannelConfig(), seed=3)
    stride = 25  # 500 ms CSI sampling
    trace = link.evaluate(
        trajectory.times[::stride], trajectory.positions[::stride], include_h=True
    )
    csi = trace.measured_csi(4)
    tof = ToFSampler(seed=5).sample(trajectory.distances_to(AP))

    classifier = MobilityClassifier()
    cursor = 0
    previous = None
    print("time    decision           (true phase)")
    for i, now in enumerate(trace.times):
        while cursor < len(trajectory.times) and trajectory.times[cursor] <= now:
            if classifier.wants_tof:
                classifier.push_tof(float(trajectory.times[cursor]), float(tof[cursor]))
            cursor += 1
        estimate = classifier.push_csi(float(now), csi[i])
        if estimate is None:
            continue
        label = estimate.mode.value
        if estimate.heading.value != "none":
            label += f"/{estimate.heading.value}"
        phase = phases[min(int(now // PHASE_S), 2)][0]
        if label != previous:
            print(f"{now:5.1f}s  {label:<18} ({phase})")
            previous = label


if __name__ == "__main__":
    main()
