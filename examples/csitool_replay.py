#!/usr/bin/env python
"""Run the classifier on a CSI Tool (.dat) log — the public-dataset path.

Public CSI corpora are distributed in the Linux 802.11n CSI Tool binary
format.  This demo synthesises such a log from the channel simulator
(quantised to the tool's signed-8-bit CSI, with its RSSI/AGC header),
parses it back with the format reader, and classifies the session — the
exact pipeline you would run on a downloaded dataset:

    records = read_csitool_log("your_dataset.dat")
    times, matrices = records_to_csi_stream(records)
    ...feed matrices into MobilityClassifier...

Run:  python examples/csitool_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import ChannelConfig, LinkChannel, MobilityClassifier, Point
from repro.io.csitool import (
    CsiRecord,
    N_SUBCARRIERS,
    read_csitool_log,
    records_to_csi_stream,
    write_csitool_log,
)
from repro.mobility.trajectory import (
    MicroJitterTrajectory,
    StaticTrajectory,
    concatenate_traces,
)

AP = Point(0.0, 0.0)
CLIENT = Point(9.0, 4.0)
PHASE_S = 20.0


def export_simulated_log(path: Path) -> None:
    """Simulate static-then-micro and export it in CSI Tool format."""
    phases = [
        StaticTrajectory(CLIENT).sample(PHASE_S, 0.5),
        MicroJitterTrajectory(CLIENT, seed=1).sample(PHASE_S, 0.5),
    ]
    trajectory = concatenate_traces(phases)
    link = LinkChannel(AP, ChannelConfig(n_subcarriers=N_SUBCARRIERS), seed=2)
    trace = link.evaluate(trajectory.times, trajectory.positions, include_h=True)
    measured = trace.measured_csi(3)

    records = []
    for i in range(len(trace.times)):
        h = measured[i]  # (30, 3, 2)
        # Quantise to the tool's signed-8-bit components.
        scale = 90.0 / max(np.max(np.abs(h.real)), np.max(np.abs(h.imag)), 1e-9)
        quantised = np.round(h * scale)
        records.append(
            CsiRecord(
                timestamp_low=int(trace.times[i] * 1e6) & 0xFFFFFFFF,
                bfee_count=i,
                n_rx=2,
                n_tx=3,
                rssi_a=max(1, int(trace.rssi_dbm[i] + 95)),
                rssi_b=max(1, int(trace.rssi_dbm[i] + 93)),
                rssi_c=0,
                noise=-92,
                agc=30,
                antenna_sel=0b100100,
                rate=0x1113,  # rate/flags code, informational
                csi=quantised,
            )
        )
    write_csitool_log(records, path)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "session.dat"
        export_simulated_log(path)
        size_kb = path.stat().st_size / 1024
        records = read_csitool_log(path)
        print(f"wrote and re-read {len(records)} CSI records ({size_kb:.0f} KiB)")
        print(
            f"first record: {records[0].n_tx}x{records[0].n_rx} antennas, "
            f"RSS {records[0].total_rss_dbm():.1f} dBm"
        )

        times, matrices = records_to_csi_stream(records)
        classifier = MobilityClassifier()
        previous = None
        print("\ntime    decision        (true phase)")
        for t, h in zip(times, matrices):
            estimate = classifier.push_csi(float(t), h)
            if estimate is None:
                continue
            label = estimate.mode.value
            phase = "static" if t < PHASE_S else "micro"
            if label != previous:
                print(f"{t:5.1f}s  {label:<15} ({phase})")
                previous = label


if __name__ == "__main__":
    main()
