#!/usr/bin/env python
"""Rate-control shoot-out on one walking link.

Replays the identical channel trace (same fading, same interference
bursts) through five rate controllers: stock Atheros RA, the paper's
motion-aware Atheros RA (fed by the classifier), RapidSample with sensor
hints, SoftRate, and ESNR.

Run:  python examples/rate_adaptation_demo.py
"""

from repro import Point
from repro.experiments.common import bounded_walk_scenario, sense_and_classify
from repro.experiments.fig09_rate_eval import _ground_truth_hints
from repro.mac.aggregation import FrameTransmitter
from repro.rate.atheros import AtherosRateAdaptation
from repro.rate.esnr import ESNRRate
from repro.rate.mobility_aware import MobilityAwareAtherosRA
from repro.rate.rapidsample import HintAwareRateControl
from repro.rate.simulator import RateControlSession
from repro.rate.softrate import SoftRate
from repro.sim import SimulationEngine, TimeGrid

AP = Point(0.0, 0.0)
START = Point(24.0, 6.0)
DURATION_S = 40.0


def main() -> None:
    print("Sensing the link (trajectory -> channel -> CSI/ToF -> classifier)...")
    scenario = bounded_walk_scenario(START, AP, seed=5)
    sensed = sense_and_classify(scenario, AP, duration_s=DURATION_S, seed=5)
    hints = sensed.hints
    accel = _ground_truth_hints(sensed)
    modes = {}
    for hint in hints:
        modes[hint.mode.value] = modes.get(hint.mode.value, 0) + 1
    print(f"classifier decisions: {modes}")

    schemes = [
        ("atheros (stock)", AtherosRateAdaptation(), ()),
        ("motion-aware", MobilityAwareAtherosRA(), hints),
        ("rapidsample [1]", HintAwareRateControl(), accel),
        ("softrate", SoftRate(seed=1), ()),
        ("esnr", ESNRRate(seed=1), ()),
    ]
    print(f"\n{'scheme':<18}{'Mbps':>8}{'mean MCS':>10}{'frames':>8}")
    for name, adapter, scheme_hints in schemes:
        # Engines are single-use: one fresh engine replays the identical
        # trace grid per scheme.
        session = RateControlSession(
            adapter,
            sensed.trace,
            transmitter=FrameTransmitter(seed=9),
            hints=scheme_hints,
            esnr_feedback_period_s=0.050,
            record_timeline=True,
        )
        engine = SimulationEngine(TimeGrid(sensed.trace.times))
        engine.add(session)
        result = engine.run()[session.client]
        print(f"{name:<18}{result.throughput_mbps:>8.1f}{result.mean_mcs:>10.2f}"
              f"{result.n_frames:>8}")

    print(
        "\nSoftRate/ESNR need client-side PHY support; the motion-aware scheme"
        "\ncloses most of the gap using only AP-side CSI and ToF."
    )


if __name__ == "__main__":
    main()
