#!/usr/bin/env python
"""The classifier as a long-running service — stream, kill, resume.

A deployed AP-side agent never sees a neat batch trace: observations
arrive interleaved across the fleet, some clients go quiet, and the
process restarts.  This demo drives the :class:`repro.stream.StreamRouter`
through that whole lifecycle on a seeded synthetic fleet:

1. stream the fleet's CSI/ToF observations through the router, stepping
   the engine lazily behind the arrivals;
2. checkpoint mid-trace, throw the router away, restore from the
   artifact, and keep streaming — the estimates are bit-identical to the
   uninterrupted run;
3. print the ingestion telemetry (every accepted/blocked/evicted
   observation is counted — losses are never silent).

Run:  python examples/stream_demo.py
"""

import tempfile
from pathlib import Path

from repro.core.batched import BatchedMobilityClassifier
from repro.stream import (
    FleetSpec,
    SimulatedSource,
    StreamConfig,
    StreamRouter,
    load_checkpoint,
    save_checkpoint,
)
from repro.telemetry.recorder import TelemetryRecorder

SPEC = FleetSpec(n_clients=16, duration_s=30.0, walking_every=4)
CONFIG = StreamConfig(dt_s=SPEC.csi_period_s, horizon_steps=SPEC.n_steps)
END_S = CONFIG.start_s + (SPEC.n_steps - 1) * CONFIG.dt_s
CHECKPOINT_AT_S = 15.0


def stream_once(source, checkpoint_path=None):
    """Feed the full trace; optionally restart from a checkpoint mid-way."""
    recorder = TelemetryRecorder()
    classifier = BatchedMobilityClassifier(source.labels)
    router = StreamRouter(classifier, config=CONFIG, recorder=recorder)
    restarted = False
    for observation in source:
        if (
            checkpoint_path is not None
            and not restarted
            and observation.time_s >= CHECKPOINT_AT_S
        ):
            save_checkpoint(router, checkpoint_path)
            del router  # the process "dies" here...
            router = load_checkpoint(checkpoint_path, recorder=recorder)
            restarted = True  # ...and a new one resumes from the artifact
        router.offer(observation)
        router.advance(observation.time_s - CONFIG.dt_s)
    router.advance(END_S)
    return router.results(), recorder


def main():
    source = SimulatedSource(SPEC, seed=17)

    results, recorder = stream_once(source)
    with tempfile.TemporaryDirectory() as tmp:
        resumed, _ = stream_once(source, checkpoint_path=Path(tmp) / "svc.ckpt")

    identical = all(
        [e.to_dict() for e in results[c]] == [e.to_dict() for e in resumed[c]]
        for c in source.labels
    )
    n_estimates = sum(len(v) for v in results.values())

    print(f"fleet: {SPEC.n_clients} clients, {SPEC.n_steps} steps, "
          f"{n_estimates} estimates")
    print(f"kill+resume bit-identical: {'yes' if identical else 'NO'}")
    walker, desk = source.labels[0], source.labels[1]
    print(f"\nlast hints — {walker} (walking): {results[walker][-1].mode.value}, "
          f"{desk} (static): {results[desk][-1].mode.value}")

    print("\ningestion counters (summed over clients):")
    totals = {}
    for name, value in recorder.metrics.counters().items():
        base = name.split(" [")[0]
        if base.startswith("stream."):
            totals[base] = totals.get(base, 0.0) + value
    for name in sorted(totals):
        print(f"  {name:<24}{totals[name]:>8.0f}")


if __name__ == "__main__":
    main()
