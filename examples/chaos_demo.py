#!/usr/bin/env python
"""Failure-containment tour: one client crashes, the run survives.

Runs a three-client engine (one sensing session feeding the classifier,
two saturated rate-control links) under the ``isolate`` supervision
policy with two seeded chaos injectors armed:

* a :class:`repro.faults.SessionCrashFault` kills one rate session
  mid-run — it is quarantined, the other two clients finish untouched;
* a :class:`repro.faults.RecorderFault` makes a slice of telemetry hooks
  raise — the engine's shield absorbs every one.

Exports:

* ``failures.json`` — the structured failure report
  (:func:`repro.telemetry.write_failure_report`);
* ``trace.jsonl``   — the event trace, including ``session_failed`` /
  ``session_quarantined``;
* stdout            — the run summary with its ``supervision:`` section.

Output paths can be overridden: ``python examples/chaos_demo.py out/``.
CI runs this to attach the failure report to the build artifacts.

Run:  python examples/chaos_demo.py [output-dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.channel.config import ChannelConfig
from repro.channel.model import MultiLinkChannel
from repro.core.classifier import MobilityClassifier
from repro.faults import RecorderFault, SessionCrashFault
from repro.mobility.trajectory import WaypointWalkTrajectory
from repro.rate.atheros import AtherosRateAdaptation
from repro.rate.simulator import RateControlSession
from repro.sim import FailureRecord, SensingSession, SimulationEngine, SupervisorConfig
from repro.telemetry import TelemetryRecorder, write_failure_report
from repro.util.geometry import Point

N_CLIENTS = 3
DURATION_S = 5.0

CRASH = SessionCrashFault(phase="transmit", at_step=20)
# Hot enough to prove the shield absorbs raises (~45 over the run),
# cool enough to stay below the shield's self-disable threshold
# (max_errors=100) so the supervision events still reach the trace.
RECORDER_CHAOS = RecorderFault(rate=0.02, seed=13, hooks=("observe",))


def build_engine(recorder) -> SimulationEngine:
    trajectories = [
        WaypointWalkTrajectory(
            Point(5.0 + i, 5.0), area=(-40, -40, 40, 40), seed=10 + i
        ).sample(DURATION_S, 0.05)
        for i in range(N_CLIENTS)
    ]

    def factory(index, trace):
        if index == 0:
            measured = trace.measured_csi(np.random.default_rng(0))
            return SensingSession(MobilityClassifier(), measured, client="sense-0")
        session = RateControlSession(
            AtherosRateAdaptation(), trace, client=f"rate-{index}"
        )
        return CRASH.wrap(session) if index == 1 else session

    channel = MultiLinkChannel.for_clients(Point(0, 0), N_CLIENTS, ChannelConfig(), seed=9)
    return SimulationEngine.for_clients(
        channel, trajectories, factory, sample_interval_s=0.1, include_h=True,
        recorder=recorder,
        supervisor=SupervisorConfig(policy="isolate"),
    )


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)

    inner = TelemetryRecorder()
    engine = build_engine(RECORDER_CHAOS.wrap(inner))
    results = engine.run()

    failures_path = out_dir / "failures.json"
    trace_path = out_dir / "trace.jsonl"
    write_failure_report(engine.failures, failures_path)
    inner.write_events_jsonl(trace_path)

    print(inner.summary(title="chaos demo run"))
    print()
    survivors = sorted(c for c, r in results.items() if not isinstance(r, FailureRecord))
    print(f"survivors:       {', '.join(survivors)}")
    for client, record in sorted(engine.failures.items()):
        print(
            f"quarantined:     {client} in {record.phase!r} at step {record.step}"
            f" ({record.exception_type}: {record.message})"
        )
    print(f"recorder chaos:  {RECORDER_CHAOS.n_fired} injected raises, all absorbed")
    print(f"failure report:  {failures_path}")
    print(f"event trace:     {trace_path} ({len(inner.tracer)} events)")

    if set(engine.failures) != {"rate-1"} or len(survivors) != N_CLIENTS - 1:
        raise SystemExit("chaos demo expected exactly one quarantined client")


if __name__ == "__main__":
    main()
