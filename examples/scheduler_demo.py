#!/usr/bin/env python
"""Mobility-aware multi-client scheduling (Section 9 future work).

One AP serves three saturated clients: static, approaching, retreating.
Compares round-robin, proportional-fair, and the mobility-aware scheduler
that serves the retreating client while its channel lasts and defers the
approaching one.

Run:  python examples/scheduler_demo.py
"""

from repro.core.hints import MobilityEstimate
from repro.mobility.modes import Heading, MobilityMode
from repro.sim import SimulationEngine, TimeGrid
from repro.testing import synthetic_trace
from repro.util.textplot import render_bars
from repro.wlan.scheduler import (
    MobilityAwareScheduler,
    ProportionalFairScheduler,
    RoundRobinScheduler,
    SchedulingSession,
)

DURATION_S = 20.0


def run_scheduler(scheduler, traces, hints):
    """One AP session on the shared grid, driven by the engine."""
    session = SchedulingSession(scheduler, traces, hints=hints, transmitter_seed=3)
    engine = SimulationEngine(TimeGrid(traces[0].times))
    engine.add(session)
    return engine.run()[session.client]


def main() -> None:
    clients = {
        "static": synthetic_trace(snr_db=22.0, duration_s=DURATION_S),
        "approaching": synthetic_trace(
            snr_db=lambda t: 10.0 + 1.2 * t, duration_s=DURATION_S, doppler_hz=23.0
        ),
        "retreating": synthetic_trace(
            snr_db=lambda t: 34.0 - 1.2 * t, duration_s=DURATION_S, doppler_hz=23.0
        ),
    }
    traces = list(clients.values())
    hints = [
        [MobilityEstimate(0.1, MobilityMode.STATIC)],
        [MobilityEstimate(0.1, MobilityMode.MACRO, Heading.TOWARDS, tof_window_full=True)],
        [MobilityEstimate(0.1, MobilityMode.MACRO, Heading.AWAY, tof_window_full=True)],
    ]

    print(f"{'scheduler':<20}{'total':>8}{'fairness':>10}   per-client (Mbps)")
    for scheduler, use_hints in (
        (RoundRobinScheduler(), None),
        (ProportionalFairScheduler(), None),
        (MobilityAwareScheduler(), hints),
    ):
        result = run_scheduler(scheduler, traces, use_hints)
        per_client = "  ".join(
            f"{name}={rate:.1f}" for name, rate in zip(clients, result.per_client_mbps)
        )
        print(
            f"{scheduler.name:<20}{result.total_mbps:>8.1f}"
            f"{result.fairness_index:>10.3f}   {per_client}"
        )

    aware = run_scheduler(MobilityAwareScheduler(), traces, hints)
    print()
    print(
        render_bars(
            dict(zip(clients, aware.per_client_mbps)),
            title="mobility-aware per-client throughput",
            unit=" Mbps",
        )
    )
    print(
        "\nThe retreating client is served while its channel is still good;"
        "\nthe approaching client catches up later at a cheaper rate."
    )


if __name__ == "__main__":
    main()
