#!/usr/bin/env python
"""End-to-end system demo: the full mobility-aware AP stack (Fig. 13).

A client walks through the 6-AP office floor; the complete mobility-aware
stack (controller roaming + motion-aware rate control + adaptive
aggregation + adaptive TxBF feedback) runs against the mobility-oblivious
defaults on the identical walk.

Run:  python examples/overall_stack_demo.py
"""

from collections import Counter

from repro import Point, SimulationEngine, TimeGrid
from repro.experiments.fig13_overall import OVERALL_CHANNEL
from repro.mobility.scenarios import macro_scenario
from repro.wlan.floorplan import default_office_floorplan
from repro.wlan.multilink import MultiApChannel
from repro.wlan.stack import StackSession, default_stack, mobility_aware_stack

WALK_SECONDS = 60.0


def main() -> None:
    floorplan = default_office_floorplan()
    scenario = macro_scenario(Point(5.0, 5.0), area=(2.0, 2.0, 38.0, 23.0), seed=31)
    trajectory = scenario.sample(WALK_SECONDS, 0.02)
    print(f"Walking {WALK_SECONDS:.0f} s across a {floorplan.n_aps}-AP floor...")
    multi = MultiApChannel(floorplan, OVERALL_CHANNEL, seed=31).evaluate(
        trajectory, sample_interval_s=0.1, include_h=True
    )

    # Both stacks co-run as sessions of one engine on the identical walk.
    engine = SimulationEngine(TimeGrid(multi.times))
    engine.add(StackSession(multi, mobility_aware_stack(), seed=7, client="mobility-aware"))
    engine.add(StackSession(multi, default_stack(), seed=7, client="default"))
    results = engine.run()
    aware, default = results["mobility-aware"], results["default"]

    print(f"\n{'stack':<16}{'UDP Mbps':>10}{'handoffs':>10}{'scans':>8}{'CSI fb':>8}")
    for name, result in (("mobility-aware", aware), ("default", default)):
        print(
            f"{name:<16}{result.mean_throughput_mbps:>10.1f}"
            f"{result.n_handoffs:>10}{result.n_scans:>8}{result.n_feedbacks:>8}"
        )

    gain = 100.0 * (aware.mean_throughput_mbps / default.mean_throughput_mbps - 1.0)
    print(f"\nmobility-aware gain: {gain:+.1f}%")

    modes = Counter(
        f"{e.mode.value}" + (f"/{e.heading.value}" if e.heading.value != "none" else "")
        for e in aware.estimates
    )
    print(f"classifier decisions along the walk: {dict(modes)}")


if __name__ == "__main__":
    main()
