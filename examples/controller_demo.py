#!/usr/bin/env python
"""Controller tour: a roaming storm, three handover policies, one dead AP.

Builds one seeded roaming-storm scenario (120 clients walking an 8-AP
floor, per-epoch shadowing jitter everywhere) and replays the identical
inputs through :mod:`repro.controller` under each handover policy:

* ``strongest``     — greedy baseline, chases the jitter into a storm;
* ``hysteresis``    — margin + cooldown, the deployed mitigation;
* ``mobility-hint`` — the paper's PHY-layer hints at the controller:
  settled-MACRO clients are not bounced, AWAY-heading clients roam
  pre-emptively, provisional hints (``tof_window_full=False``) never act.

The mobility-hint replay also takes an AP failure mid-run: the dead AP
is quarantined, its clients mass-reassociate, and the failure surfaces
in the structured report.

Exports:

* ``controller_failures.json`` — AP quarantine report
  (:func:`repro.telemetry.write_failure_report`);
* ``controller_trace.jsonl``   — the ``controller_*`` event trace;
* stdout                       — the per-policy comparison table.

Output paths can be overridden: ``python examples/controller_demo.py out/``.
CI runs this and attaches both exports to the build artifacts.

Run:  python examples/controller_demo.py [output-dir]
"""

import sys
from pathlib import Path

from repro.controller import MobilityHintPolicy
from repro.controller.session import ApFailureEvent
from repro.experiments import ext_controller
from repro.telemetry import TelemetryRecorder, write_failure_report
from repro.wlan.floorplan import grid_floorplan

N_CLIENTS = 120
DURATION_S = 40.0
SEED = 42
DEAD_AP = 5
FAIL_AT_S = 25.0


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)

    print(f"building storm: {N_CLIENTS} clients, 8 APs, {DURATION_S:.0f} s ...")
    inputs = ext_controller.build_storm(
        N_CLIENTS, floorplan=grid_floorplan(), duration_s=DURATION_S, seed=SEED
    )

    # Fault-free replay of the identical inputs under every policy.
    results = ext_controller.compare_policies(inputs)
    report = ext_controller.StormReport(
        n_clients=inputs.n_clients,
        n_aps=inputs.n_aps,
        duration_s=inputs.duration_s,
        results=results,
    )
    print()
    print(report.format_report())

    # The chaos replay: mobility-hint policy, one AP dies mid-run.
    recorder = TelemetryRecorder()
    faulty = ext_controller.run_storm(
        inputs,
        MobilityHintPolicy(),
        ap_failures=[ApFailureEvent(ap=DEAD_AP, at_s=FAIL_AT_S, reason="demo kill")],
        recorder=recorder,
    )

    failures_path = out_dir / "controller_failures.json"
    trace_path = out_dir / "controller_trace.jsonl"
    write_failure_report(faulty.failures, failures_path)
    recorder.write_events_jsonl(trace_path)

    print()
    for name, record in sorted(faulty.failures.items()):
        print(
            f"quarantined:     {name} at t={record.time_s:.1f} s"
            f" ({record.exception_type}: {record.message})"
        )
    print(f"reassociated:    {faulty.totals['reassociations']} clients off ap-{DEAD_AP}")
    print(f"failure report:  {failures_path}")
    print(f"event trace:     {trace_path} ({len(recorder.tracer)} events)")

    hinted = results["mobility-hint"]
    strongest = results["strongest"]
    if hinted.totals["handovers"] >= strongest.totals["handovers"]:
        raise SystemExit("demo expected the hint policy to issue fewer handovers")
    if f"ap-{DEAD_AP}" not in faulty.failures:
        raise SystemExit("demo expected the dead AP to be quarantined")
    if faulty.totals["reassociations"] == 0:
        raise SystemExit("demo expected stranded clients to reassociate")


if __name__ == "__main__":
    main()
