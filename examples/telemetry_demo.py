#!/usr/bin/env python
"""Observability tour: one seeded run, fully traced.

Runs a three-client engine (one sensing session feeding the classifier,
two saturated rate-control links with mobility hints) with a live
:class:`repro.telemetry.TelemetryRecorder`, then writes every export:

* ``trace.jsonl``  — the structured event trace (one JSON object/line);
* ``metrics.csv``  — flat counters/gauges/histogram dump;
* stdout           — the human-readable run summary table.

Output paths can be overridden: ``python examples/telemetry_demo.py out/``.
CI runs this to attach a sample trace to the build artifacts.

Run:  python examples/telemetry_demo.py [output-dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.channel.config import ChannelConfig
from repro.channel.model import MultiLinkChannel
from repro.core.classifier import MobilityClassifier
from repro.core.hints import MobilityEstimate
from repro.mobility.modes import Heading, MobilityMode
from repro.mobility.trajectory import WaypointWalkTrajectory
from repro.rate.atheros import AtherosRateAdaptation
from repro.rate.simulator import RateControlSession
from repro.sim import SensingSession, SimulationEngine
from repro.telemetry import TelemetryRecorder
from repro.util.geometry import Point

N_CLIENTS = 3
DURATION_S = 5.0


def build_engine(recorder: TelemetryRecorder) -> SimulationEngine:
    trajectories = [
        WaypointWalkTrajectory(
            Point(5.0 + i, 5.0), area=(-40, -40, 40, 40), seed=10 + i
        ).sample(DURATION_S, 0.05)
        for i in range(N_CLIENTS)
    ]
    hints = [MobilityEstimate(1.0, MobilityMode.MACRO, Heading.AWAY, tof_window_full=True)]

    def factory(index, trace):
        if index == 0:
            measured = trace.measured_csi(np.random.default_rng(0))
            return SensingSession(MobilityClassifier(), measured, client="sense-0")
        return RateControlSession(
            AtherosRateAdaptation(), trace, hints=hints, client=f"rate-{index}"
        )

    channel = MultiLinkChannel.for_clients(Point(0, 0), N_CLIENTS, ChannelConfig(), seed=9)
    return SimulationEngine.for_clients(
        channel, trajectories, factory, sample_interval_s=0.1, include_h=True,
        recorder=recorder,
    )


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)

    recorder = TelemetryRecorder()
    results = build_engine(recorder).run()

    trace_path = out_dir / "trace.jsonl"
    metrics_path = out_dir / "metrics.csv"
    recorder.write_events_jsonl(trace_path)
    recorder.write_metrics_csv(metrics_path)

    print(recorder.summary(title="telemetry demo run"))
    print()
    print(f"clients:       {', '.join(sorted(results))}")
    print(f"event trace:   {trace_path} ({len(recorder.tracer)} events)")
    print(f"metrics dump:  {metrics_path} ({len(recorder.metrics)} metrics)")


if __name__ == "__main__":
    main()
