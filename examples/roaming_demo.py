#!/usr/bin/env python
"""Roaming shoot-out on a 6-AP office floor.

A client walks naturally across the floorplan of Fig. 13(a); four roaming
policies replay the identical walk: stick-to-first, the default client
scheme, the sensor-hint client scheme of [1], and the paper's
controller-based mobility-aware roaming.

Run:  python examples/roaming_demo.py
"""

import numpy as np

from repro import ChannelConfig, Point
from repro.mobility.scenarios import macro_scenario
from repro.roaming.schemes import (
    ControllerRoaming,
    DefaultClientRoaming,
    SensorHintRoaming,
    StickToFirstAp,
)
from repro.roaming.simulator import RoamingSession
from repro.sim import SimulationEngine, TimeGrid
from repro.wlan.floorplan import default_office_floorplan
from repro.wlan.multilink import MultiApChannel

WALK_SECONDS = 90.0
CHANNEL = ChannelConfig(tx_power_dbm=8.0, shadowing_sigma_db=4.5)


def main() -> None:
    floorplan = default_office_floorplan()
    scenario = macro_scenario(Point(4.0, 4.0), area=(2.0, 2.0, 38.0, 23.0), seed=11)
    trajectory = scenario.sample(WALK_SECONDS, 0.02)

    print(f"Floorplan: {floorplan.n_aps} APs over {floorplan.bounds[2]:.0f} x "
          f"{floorplan.bounds[3]:.0f} m; walk of {WALK_SECONDS:.0f} s")

    channel = MultiApChannel(floorplan, CHANNEL, seed=7)
    multi = channel.evaluate(trajectory, sample_interval_s=0.1, include_h=True)
    device_mobile = np.ones(len(multi.times), dtype=bool)  # accelerometer truth

    print(f"\n{'scheme':<14}{'UDP Mbps':>10}{'TCP Mbps':>10}{'handoffs':>10}{'scans':>8}")
    for scheme in (
        StickToFirstAp(),
        DefaultClientRoaming(),
        SensorHintRoaming(),
        ControllerRoaming(),
    ):
        # Engines are single-use: one fresh engine replays the identical
        # walk per scheme.
        session = RoamingSession(multi, scheme, device_mobile_truth=device_mobile, seed=3)
        engine = SimulationEngine(TimeGrid(multi.times))
        engine.add(session)
        result = engine.run()[session.client]
        print(
            f"{scheme.name:<14}{result.mean_throughput_mbps:>10.1f}"
            f"{result.tcp_throughput_mbps():>10.1f}"
            f"{len(result.handoffs):>10}{result.n_scans:>8}"
        )

    print(
        "\nThe controller roams the client proactively (no client scans) only"
        "\nwhen it is walking away from its AP towards a better one."
    )


if __name__ == "__main__":
    main()
